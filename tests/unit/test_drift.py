"""Resistance-drift model and the Multi-RESET safety argument."""

import pytest

from repro.errors import ConfigError
from repro.pcm.drift import DriftModel


@pytest.fixture
def model():
    return DriftModel()


class TestPowerLaw:
    def test_no_drift_at_t0(self, model):
        for level in range(4):
            assert model.resistance_at(level, model.t0_seconds) == \
                model.level_resistances[level]

    def test_resistance_increases(self, model):
        for level in range(4):
            early = model.resistance_at(level, 1e-3)
            late = model.resistance_at(level, 1.0)
            assert late >= early

    def test_intermediate_levels_drift_most(self, model):
        """Relative drift over a fixed window is largest for the
        partially-amorphous intermediate levels."""
        window = 1.0
        rel = [
            model.resistance_at(level, window) / model.level_resistances[level]
            for level in range(4)
        ]
        assert rel[2] > rel[0]
        assert rel[2] > rel[3]

    def test_negative_time_rejected(self, model):
        with pytest.raises(ConfigError):
            model.resistance_at(0, -1.0)

    def test_bad_level(self, model):
        with pytest.raises(ConfigError):
            model.resistance_at(7, 1.0)


class TestSensing:
    def test_nominal_levels_read_back(self, model):
        for level in range(4):
            r = model.level_resistances[level]
            assert model.sensed_level(r) == level

    def test_boundaries_monotone(self, model):
        assert list(model.boundaries) == sorted(model.boundaries)

    def test_drifted_cell_eventually_misreads(self, model):
        level = 2
        horizon = model.time_to_misread(level)
        assert horizon < float("inf")
        drifted = model.resistance_at(level, horizon * 2)
        assert model.sensed_level(drifted) > level

    def test_top_level_never_misreads(self, model):
        assert model.time_to_misread(3) == float("inf")

    def test_margin_consumed_monotone(self, model):
        a = model.margin_consumed(1, 1e-3)
        b = model.margin_consumed(1, 1e3)
        assert 0.0 <= a <= b


class TestMultiResetClaim:
    def test_short_pause_is_safe(self, model):
        """Section 3.2: a Multi-RESET pause of a few RESET pulses
        (hundreds of ns) consumes a negligible drift margin."""
        two_reset_pulses = 2 * 125e-9
        assert model.multi_reset_pause_is_safe(two_reset_pulses)

    def test_very_long_pause_is_not(self, model):
        assert not model.multi_reset_pause_is_safe(
            3.2e7, margin_budget=0.05
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            DriftModel(level_resistances=(1e3, 5e2, 1e5, 1e6))
        with pytest.raises(ConfigError):
            DriftModel(t0_seconds=0.0)

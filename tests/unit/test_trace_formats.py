"""Trace save/load roundtrips."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.sim.runner import run_simulation
from repro.trace.formats import load_trace, save_trace
from repro.trace.generator import generate_trace

from ..conftest import make_tiny_config


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        make_tiny_config(), "mcf_m",
        n_pcm_writes=40, max_refs_per_core=10_000,
    )


class TestRoundtrip:
    def test_stats_preserved(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.workload == trace.workload
        assert loaded.line_size == trace.line_size
        assert loaded.summary() == trace.summary()

    def test_records_preserved(self, trace, tmp_path):
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.n_cores == trace.n_cores
        for a_stream, b_stream in zip(trace.per_core, loaded.per_core):
            assert len(a_stream) == len(b_stream)
            for a, b in zip(a_stream, b_stream):
                assert (a.kind, a.line_addr, a.gap_instr, a.gap_hit_cycles) \
                    == (b.kind, b.line_addr, b.gap_instr, b.gap_hit_cycles)
                if a.kind == "W":
                    assert (a.changed_idx == b.changed_idx).all()
                    assert (a.iter_counts == b.iter_counts).all()
                    assert a.slc_bit_changes == b.slc_bit_changes

    def test_simulation_identical_on_loaded_trace(self, trace, tmp_path):
        """A loaded trace must replay bit-identically."""
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        config = make_tiny_config()
        a = run_simulation(config, "mcf_m", "fpb", trace=trace)
        b = run_simulation(config, "mcf_m", "fpb", trace=loaded)
        assert a.cycles == b.cycles
        assert a.stats.summary() == b.stats.summary()

    def test_version_check(self, trace, tmp_path):
        import json
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = 99
        data["meta"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **data)
        with pytest.raises(TraceError):
            load_trace(path)

    def test_empty_trace(self, tmp_path):
        from repro.trace.records import Trace
        empty = Trace(workload="none", line_size=256, per_core=[[], []])
        path = tmp_path / "e.npz"
        save_trace(empty, path)
        loaded = load_trace(path)
        assert loaded.n_accesses == 0
        assert loaded.n_cores == 2

"""Wear tracking and lifetime estimation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.pcm.endurance import DEFAULT_MLC_ENDURANCE, WearTracker


class TestWearTracker:
    def test_untouched_line_has_no_wear(self):
        tracker = WearTracker(1024)
        assert tracker.max_wear(0) == 0
        assert tracker.remaining_lifetime_fraction(0) == 1.0

    def test_write_ages_changed_cells(self):
        tracker = WearTracker(1024)
        tracker.record_write(0, np.array([1, 5, 9]))
        wear = tracker.line_wear(0)
        assert wear[1] == wear[5] == wear[9] == 1
        assert wear.sum() == 3

    def test_repeated_writes_accumulate(self):
        tracker = WearTracker(1024)
        for _ in range(5):
            tracker.record_write(0, np.array([7]))
        assert tracker.max_wear(0) == 5

    def test_rotation_spreads_wear(self):
        """PWL's purpose: the same logical cells, rotated, age different
        physical cells."""
        plain = WearTracker(1024)
        rotated = WearTracker(1024)
        idx = np.array([0, 1, 2, 3])
        for k in range(8):
            plain.record_write(0, idx, offset=0)
            rotated.record_write(0, idx, offset=k * 128)
        assert rotated.max_wear(0) < plain.max_wear(0)
        assert rotated.wear_imbalance(0) < plain.wear_imbalance(0)

    def test_imbalance_of_even_wear(self):
        tracker = WearTracker(8)
        tracker.record_write(0, np.arange(8))
        assert tracker.wear_imbalance(0) == pytest.approx(1.0)

    def test_global_max(self):
        tracker = WearTracker(1024)
        tracker.record_write(0, np.array([0]))
        tracker.record_write(256, np.array([0, 1]))
        tracker.record_write(256, np.array([0]))
        assert tracker.max_wear() == 2

    def test_lifetime_fraction_decreases(self):
        tracker = WearTracker(16, endurance=10)
        for _ in range(4):
            tracker.record_write(0, np.array([3]))
        assert tracker.remaining_lifetime_fraction(0) == pytest.approx(0.6)

    def test_mean_imbalance(self):
        tracker = WearTracker(8)
        tracker.record_write(0, np.arange(8))     # even
        tracker.record_write(64, np.array([0]))   # skewed
        assert tracker.mean_imbalance() > 1.0

    def test_counters(self):
        tracker = WearTracker(1024)
        tracker.record_write(0, np.array([1, 2]))
        tracker.record_write(0, np.array([3]))
        assert tracker.total_cell_writes == 3
        assert tracker.line_writes == 2
        assert tracker.lines_tracked == 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            WearTracker(0)
        with pytest.raises(ConfigError):
            WearTracker(8, endurance=0)
        tracker = WearTracker(8)
        with pytest.raises(ConfigError):
            tracker.record_write(0, np.array([9]))

    def test_default_endurance(self):
        assert WearTracker(8).endurance == DEFAULT_MLC_ENDURANCE

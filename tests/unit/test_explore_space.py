"""Unit tests for the explore search-space layer and its strategies.

Covers the declarative surface (axis/space validation, JSON loading,
canonical grids), the config/scheme lowering contract (every point
lowers to an ordinary :class:`SystemConfig` + scheme name whose
fingerprint keys the run caches), and the determinism contract of the
three strategies (the full point sequence is a pure function of
``(space, strategy, seed)``).
"""

from __future__ import annotations

import json

import pytest

from repro.config.presets import baseline_config
from repro.config.system import config_fingerprint
from repro.core.policies.registry import get_scheme
from repro.explore import (
    PARAMETERS,
    Axis,
    ExploreError,
    SearchSpace,
    make_strategy,
    named_spaces,
    space_from_dict,
)

BASE = baseline_config(seed=1)


def small_space():
    return SearchSpace(name="unit", axes=(
        Axis("dimm_tokens", values=(490.0, 560.0)),
        Axis("gcp_efficiency", values=(0.5, 0.85)),
        Axis("mr_splits", values=(1, 3)),
    ))


class TestAxis:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ExploreError, match="unknown parameter"):
            Axis("warp_factor")

    def test_values_and_range_are_exclusive(self):
        with pytest.raises(ExploreError, match="not both"):
            Axis("dimm_tokens", values=(1.0,), low=0.0, high=1.0)

    def test_range_needs_both_bounds(self):
        with pytest.raises(ExploreError, match="both low and high"):
            Axis("dimm_tokens", low=400.0)

    def test_range_rejected_on_non_float_params(self):
        with pytest.raises(ExploreError, match="float"):
            Axis("mr_splits", low=1.0, high=4.0)

    def test_inverted_range_rejected(self):
        with pytest.raises(ExploreError, match="low < high"):
            Axis("dimm_tokens", low=600.0, high=400.0)

    def test_duplicate_values_rejected(self):
        with pytest.raises(ExploreError, match="duplicate"):
            Axis("mr_splits", values=(2, 2))

    def test_choice_values_validated(self):
        with pytest.raises(ExploreError, match="invalid value"):
            Axis("mapping", values=("bim", "zigzag"))

    def test_default_grid_comes_from_registry(self):
        axis = Axis("line_size")
        assert axis.grid() == PARAMETERS["line_size"].default_grid

    def test_range_grid_spans_endpoints(self):
        axis = Axis("gcp_efficiency", low=0.5, high=0.9, steps=5)
        grid = axis.grid()
        assert grid[0] == 0.5 and grid[-1] == pytest.approx(0.9)
        assert len(grid) == 5

    def test_sample_maps_unit_interval(self):
        axis = Axis("dimm_tokens", low=400.0, high=600.0)
        assert axis.sample(0.0) == 400.0
        assert axis.sample(0.5) == 500.0
        discrete = Axis("mr_splits", values=(1, 2, 3))
        assert discrete.sample(0.0) == 1
        assert discrete.sample(0.999) == 3


class TestSearchSpace:
    def test_empty_space_rejected(self):
        with pytest.raises(ExploreError, match="no axes"):
            SearchSpace(name="x", axes=())

    def test_repeated_parameter_rejected(self):
        with pytest.raises(ExploreError, match="repeats"):
            SearchSpace(name="x", axes=(
                Axis("mr_splits", values=(1,)),
                Axis("mr_splits", values=(2,)),
            ))

    def test_grid_points_cartesian_order(self):
        space = small_space()
        points = list(space.grid_points())
        assert len(points) == space.grid_size() == 8
        assert points[0] == (("dimm_tokens", 490.0),
                             ("gcp_efficiency", 0.5), ("mr_splits", 1))
        # Last axis varies fastest.
        assert points[1] == (("dimm_tokens", 490.0),
                             ("gcp_efficiency", 0.5), ("mr_splits", 3))

    def test_fingerprint_canonical(self):
        assert small_space().fingerprint() == small_space().fingerprint()
        other = SearchSpace(name="unit2", axes=small_space().axes)
        assert other.fingerprint() != small_space().fingerprint()

    def test_json_roundtrip(self):
        space = small_space()
        rebuilt = space_from_dict(json.loads(json.dumps(space.to_dict())))
        assert rebuilt.fingerprint() == space.fingerprint()

    def test_from_dict_rejects_unknown_axis_fields(self):
        with pytest.raises(ExploreError, match="unknown field"):
            space_from_dict({"name": "x", "axes": [
                {"param": "mr_splits", "surprise": 1}]})

    def test_from_dict_needs_axes(self):
        with pytest.raises(ExploreError, match="axes"):
            space_from_dict({"name": "x"})

    def test_named_spaces_validate_against_baseline(self):
        for space in named_spaces().values():
            space.validate(BASE, "fpb")

    def test_demo3_has_sixty_grid_points(self):
        assert named_spaces()["demo3"].grid_size() == 60


class TestLowering:
    def test_config_axes_derive_config(self):
        space = SearchSpace(name="cfg", axes=(
            Axis("dimm_tokens", values=(490.0,)),
            Axis("line_size", values=(128,)),
        ))
        config, scheme = space.lower(
            (("dimm_tokens", 490.0), ("line_size", 128)), BASE, "fpb")
        assert config.power.dimm_tokens == 490.0
        assert config.memory.line_size == 128
        assert config.caches.l3.line_size == 128
        assert scheme == "fpb"
        assert config_fingerprint(config) != config_fingerprint(BASE)

    def test_scheme_axes_recompose_scheme_name(self):
        space = small_space()
        point = (("dimm_tokens", 560.0), ("gcp_efficiency", 0.85),
                 ("mr_splits", 3))
        config, scheme = space.lower(point, BASE, "fpb")
        assert scheme == "ipm+mr3-bim-0.85"
        spec = get_scheme(scheme)
        assert spec.gcp and spec.ipm and spec.mr_splits == 3
        assert spec.gcp_efficiency == 0.85

    def test_mr_one_composes_plain_ipm(self):
        space = small_space()
        point = (("dimm_tokens", 490.0), ("gcp_efficiency", 0.5),
                 ("mr_splits", 1))
        _, scheme = space.lower(point, BASE, "fpb")
        assert scheme == "ipm-bim-0.5"
        assert get_scheme(scheme).mr_splits == 1

    def test_gcp_base_scheme_composes_gcp_name(self):
        space = SearchSpace(name="g", axes=(
            Axis("mapping", values=("vim",)),))
        _, scheme = space.lower((("mapping", "vim"),), BASE,
                                "gcp-bim-0.7")
        assert scheme == "gcp-vim-0.7"

    def test_scheme_axes_need_gcp_base(self):
        space = SearchSpace(name="g", axes=(
            Axis("gcp_efficiency", values=(0.5,)),))
        with pytest.raises(ExploreError, match="GCP-based"):
            space.lower((("gcp_efficiency", 0.5),), BASE, "dimm+chip")

    def test_mr_axis_needs_ipm_base(self):
        space = SearchSpace(name="g", axes=(
            Axis("mr_splits", values=(3,)),))
        with pytest.raises(ExploreError, match="IPM"):
            space.lower((("mr_splits", 3),), BASE, "gcp-bim-0.7")

    def test_invalid_geometry_reported_with_point(self):
        # line_size 64 over 16 chips divides, but 8 banks * 16 chips
        # with line 64 / n_chips=16 -> 4 bytes/chip is fine; instead
        # force the indivisible case directly.
        space = SearchSpace(name="g", axes=(
            Axis("n_chips", values=(16,)),
            Axis("line_size", values=(64,)),
        ))
        # 64 % 16 == 0 so this lowers fine; the indivisible case:
        bad = SearchSpace(name="b", axes=(
            Axis("n_chips", values=(6,)),))
        with pytest.raises(ExploreError, match="does not lower"):
            bad.lower((("n_chips", 6),), BASE, "fpb")
        space.lower((("n_chips", 16), ("line_size", 64)), BASE, "fpb")

    def test_bits_per_cell_swaps_level_models(self):
        space = SearchSpace(name="m", axes=(
            Axis("bits_per_cell"),))
        slc, _ = space.lower((("bits_per_cell", 1),), BASE, "fpb")
        assert slc.pcm.bits_per_cell == 1
        assert len(slc.pcm.level_models) == 2
        mlc, _ = space.lower((("bits_per_cell", 2),), BASE, "fpb")
        assert mlc.pcm.bits_per_cell == 2
        assert len(mlc.pcm.level_models) == 4

    def test_validate_probes_extremes(self):
        bad = SearchSpace(name="b", axes=(
            Axis("n_chips", values=(8, 6)),))
        with pytest.raises(ExploreError):
            bad.validate(BASE, "fpb")


class TestStrategies:
    @pytest.mark.parametrize("name", ["grid", "random", "adaptive"])
    def test_point_sequence_deterministic(self, name):
        space = small_space()
        a = [list(g) for g in
             make_strategy(name, space, 8, 3).generations()]
        b = [list(g) for g in
             make_strategy(name, space, 8, 3).generations()]
        assert a == b

    def test_seed_changes_random_sequence(self):
        space = small_space()
        a = list(make_strategy("random", space, 8, 1).generations())
        b = list(make_strategy("random", space, 8, 2).generations())
        assert a != b

    def test_grid_truncates_to_budget(self):
        space = small_space()
        (points,) = make_strategy("grid", space, 3, 1).generations()
        assert points == list(space.grid_points())[:3]

    def test_random_points_unique_and_in_space(self):
        space = small_space()
        (points,) = make_strategy("random", space, 8, 5).generations()
        assert len(points) == len(set(points))
        grids = {axis.param: set(axis.grid()) for axis in space.axes}
        for point in points:
            for param, value in point:
                assert value in grids[param]

    def test_adaptive_respects_budget(self):
        space = SearchSpace(name="wide", axes=(
            Axis("dimm_tokens", low=400.0, high=700.0, steps=8),
            Axis("gcp_efficiency", low=0.4, high=0.95, steps=8),
        ))
        gens = list(make_strategy("adaptive", space, 12, 2).generations())
        assert sum(len(g) for g in gens) <= 12
        assert len(gens) >= 2

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ExploreError, match="unknown strategy"):
            make_strategy("simulated-annealing", small_space(), 4, 1)

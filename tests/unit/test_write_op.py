"""WriteOperation: iteration schedules and power-demand profiles."""

import numpy as np
import pytest

from repro.core.write_op import IterationKind, WriteOperation, WriteState
from repro.errors import SchedulingError
from repro.pcm.mapping import make_mapping

MAPPING = make_mapping("naive", 1024, 8)
C = 2.0  # Figure 5's illustrative RESET/SET power ratio.


def figure5_write(mr_splits: int = 1) -> WriteOperation:
    """WR-A of Figure 5: 50 changed cells, actives 50/48/26/12."""
    iters = np.array([1] * 2 + [2] * 22 + [3] * 14 + [4] * 12)
    # Spread the cells across the whole line so chips share them.
    idx = np.arange(0, 1000, 20)
    return WriteOperation(1, 0, 0, idx, iters, MAPPING, mr_splits=mr_splits)


class TestSchedule:
    def test_total_iterations(self):
        assert figure5_write().total_iterations == 4

    def test_kinds(self):
        w = figure5_write()
        assert w.iteration_kind(0) is IterationKind.RESET
        assert all(
            w.iteration_kind(i) is IterationKind.SET for i in range(1, 4)
        )

    def test_active_profile(self):
        assert figure5_write().active.tolist() == [50, 48, 26, 12]

    def test_cells_finishing_sum_to_total(self):
        w = figure5_write()
        done = sum(w.cells_finishing_at(i) for i in range(w.total_iterations))
        assert done == 50

    def test_cells_finishing_per_iteration(self):
        w = figure5_write()
        assert [w.cells_finishing_at(i) for i in range(4)] == [2, 22, 14, 12]

    def test_out_of_range_iteration(self):
        with pytest.raises(SchedulingError):
            figure5_write().iteration_kind(4)

    def test_initial_state(self):
        w = figure5_write()
        assert w.state is WriteState.QUEUED
        assert w.current_iteration == 0

    def test_misaligned_counts_rejected(self):
        with pytest.raises(SchedulingError):
            WriteOperation(
                1, 0, 0, np.arange(5), np.array([1, 2]), MAPPING
            )


class TestIPMAllocationProfile:
    """The Figure 5(b) token schedule, exactly."""

    def test_dimm_allocs(self):
        w = figure5_write()
        allocs = [w.dimm_alloc(i, C, ipm=True) for i in range(4)]
        assert allocs == [50.0, 25.0, 24.0, 13.0]

    def test_per_write_allocs_are_flat(self):
        w = figure5_write()
        allocs = [w.dimm_alloc(i, C, ipm=False) for i in range(4)]
        assert allocs == [50.0] * 4

    def test_chip_allocs_sum_to_dimm(self):
        w = figure5_write()
        for i in range(4):
            assert w.chip_alloc(i, C, ipm=True).sum() == pytest.approx(
                w.dimm_alloc(i, C, ipm=True)
            )

    def test_iteration2_allocation_is_conservative(self):
        """Iteration 2 reclaims (C-1)/C of the RESET tokens without yet
        knowing how many cells finished (Section 3): 25 >= 48/2."""
        w = figure5_write()
        assert w.dimm_alloc(1, C, ipm=True) >= w.active[1] / C

    def test_table1_ratio(self):
        w = figure5_write()
        c_table = 480.0 / 90.0
        assert w.dimm_alloc(1, c_table, ipm=True) == pytest.approx(50 / c_table)


class TestMultiReset:
    def test_groups_partition_cells(self):
        w = figure5_write(mr_splits=3)
        assert w.group_totals.sum() == 50
        assert w.group_chip_counts.sum() == 50

    def test_total_iterations_grow(self):
        assert figure5_write(mr_splits=3).total_iterations == 4 + 2

    def test_reset_kinds(self):
        w = figure5_write(mr_splits=3)
        kinds = [w.iteration_kind(i) for i in range(w.total_iterations)]
        assert kinds[:3] == [IterationKind.RESET] * 3
        assert kinds[3:] == [IterationKind.SET] * 3

    def test_group_demand_below_full_reset(self):
        """The point of Multi-RESET: each RESET group needs fewer tokens
        than the single full RESET (Section 3.2)."""
        full = figure5_write()
        split = figure5_write(mr_splits=3)
        full_demand = full.dimm_alloc(0, C, ipm=True)
        group_demands = [split.dimm_alloc(g, C, ipm=True) for g in range(3)]
        assert max(group_demands) < full_demand

    def test_set_phase_unchanged(self):
        full = figure5_write()
        split = figure5_write(mr_splits=2)
        assert split.dimm_alloc(2, C, ipm=True) == full.dimm_alloc(1, C, ipm=True)
        assert split.dimm_alloc(3, C, ipm=True) == full.dimm_alloc(2, C, ipm=True)

    def test_cannot_replan_inflight(self):
        w = figure5_write()
        w.state = WriteState.ACTIVE
        with pytest.raises(SchedulingError):
            w.apply_multi_reset(3)

    def test_bad_split_rejected(self):
        with pytest.raises(SchedulingError):
            figure5_write(mr_splits=0)


class TestTruncation:
    def test_truncation_caps_slow_cells(self):
        """Write truncation [10]: once <= max_cells stragglers remain,
        stop and let ECC fix them."""
        iters = np.array([1] * 10 + [2] * 10 + [16] * 3)
        w = WriteOperation(
            1, 0, 0, np.arange(23), iters, MAPPING, truncate_max_cells=4
        )
        assert w.max_cell_iterations < 16

    def test_no_truncation_when_many_slow(self):
        iters = np.array([16] * 30)
        w = WriteOperation(
            1, 0, 0, np.arange(30), iters, MAPPING, truncate_max_cells=4
        )
        assert w.max_cell_iterations == 16

    def test_truncation_disabled_by_zero(self):
        iters = np.array([1] * 10 + [16] * 2)
        w = WriteOperation(
            1, 0, 0, np.arange(12), iters, MAPPING, truncate_max_cells=0
        )
        assert w.max_cell_iterations == 16


class TestEmptyWrite:
    def test_zero_changed_cells(self):
        w = WriteOperation(
            1, 0, 0, np.zeros(0, np.int64), np.zeros(0, np.int64), MAPPING
        )
        assert w.total_iterations == 0
        assert w.n_changed == 0

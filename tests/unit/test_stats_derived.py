"""Derived-metric guards on :class:`SimStats`.

Every derived property must be well-defined on an empty run (the
zero-division edges) and consistent with its raw counters, because
manifests snapshot them unconditionally.
"""

import json
import math

import pytest

from repro.sim.stats import SimStats


class TestZeroRunEdges:
    """A freshly constructed SimStats — nothing simulated yet."""

    def test_cpi_of_empty_run_is_one(self):
        assert SimStats().cpi == 1.0

    def test_cpi_skips_cores_without_instructions(self):
        stats = SimStats(
            core_instructions=[100, 0],
            core_finish_cycles=[250, 9999],
        )
        assert stats.cpi == 2.5

    def test_burst_fraction_zero_cycles(self):
        assert SimStats().burst_fraction == 0.0

    def test_write_throughput_no_active_cycles(self):
        stats = SimStats(writes_done=5)
        assert stats.write_throughput == 0.0

    def test_mean_read_latency_no_reads(self):
        assert SimStats(read_latency_sum=123).mean_read_latency == 0.0

    def test_mean_write_latency_no_writes(self):
        assert SimStats(write_latency_sum=123).mean_write_latency == 0.0

    def test_mean_gcp_tokens_no_writes(self):
        stats = SimStats(gcp_tokens_per_write_sum=40.0)
        assert stats.mean_gcp_tokens_per_write == 0.0


class TestDerivedValues:
    def test_burst_fraction(self):
        stats = SimStats(burst_cycles=250, total_cycles=1000)
        assert stats.burst_fraction == 0.25

    def test_write_throughput_per_kilocycle(self):
        stats = SimStats(writes_done=4, write_active_cycles=2000)
        assert stats.write_throughput == 2.0

    def test_mean_latencies(self):
        stats = SimStats(reads_done=4, read_latency_sum=100,
                         writes_done=2, write_latency_sum=900)
        assert stats.mean_read_latency == 25.0
        assert stats.mean_write_latency == 450.0

    def test_mean_gcp_tokens_averages_over_all_writes(self):
        stats = SimStats(writes_done=10, gcp_used_writes=2,
                         gcp_tokens_per_write_sum=30.0)
        assert stats.mean_gcp_tokens_per_write == 3.0


class TestWriteEnergy:
    def test_zero_frequency_guard(self):
        stats = SimStats(dimm_token_cycles=1e9)
        assert stats.write_energy_uj(80.0, 0.0) == 0.0
        assert stats.write_energy_uj(80.0, -1.0) == 0.0

    def test_zero_token_cycles(self):
        assert SimStats().write_energy_uj(80.0, 4.0) == 0.0

    def test_known_value(self):
        # 1 token held for 4e9 cycles at 4 GHz = 1 token-second;
        # at 80 uW per token that is 80 uJ.
        stats = SimStats(dimm_token_cycles=4e9)
        assert stats.write_energy_uj(80.0, 4.0) == pytest.approx(80.0)

    def test_scales_linearly_in_power(self):
        stats = SimStats(dimm_token_cycles=1e6)
        assert stats.write_energy_uj(160.0, 2.0) == pytest.approx(
            2 * stats.write_energy_uj(80.0, 2.0)
        )


class TestSnapshot:
    def test_empty_snapshot_is_finite_and_json_safe(self):
        snap = SimStats().snapshot()
        json.dumps(snap)
        for key, value in snap.items():
            if isinstance(value, float):
                assert math.isfinite(value), key

    def test_snapshot_includes_raw_and_derived(self):
        stats = SimStats(writes_done=3, total_cycles=100, burst_cycles=50)
        snap = stats.snapshot()
        assert snap["writes_done"] == 3
        assert snap["burst_fraction"] == 0.5
        for derived in ("cpi", "write_throughput", "mean_read_latency",
                        "mean_write_latency", "mean_gcp_tokens_per_write"):
            assert derived in snap

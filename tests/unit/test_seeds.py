"""Unit tests for :mod:`repro.util.seeds`.

The module's whole value is *byte-compatibility*: every site that used
to hand-roll its own sha256-to-number recipe now derives through one
canonical layout, and that layout must reproduce the historical values
exactly — the backoff jitter is part of recorded retry schedules and
the golden sample ranking is part of CI's spot-check contract.
"""

from __future__ import annotations

import hashlib

from repro.experiments.golden import select_spot_checks
from repro.experiments.resilience import RetryPolicy, backoff_delay
from repro.util.seeds import (
    derive_fraction,
    derive_key,
    derive_seed,
    stable_digest,
)


class TestCanonicalLayout:
    def test_parts_are_stringified_and_colon_joined(self):
        assert (stable_digest("a", 1, 2.5)
                == hashlib.sha256(b"a:1:2.5").digest())

    def test_single_part(self):
        assert stable_digest("x") == hashlib.sha256(b"x").digest()

    def test_distinct_inputs_distinct_digests(self):
        assert stable_digest("a", "b") != stable_digest("ab")
        assert stable_digest("a", 1) != stable_digest("a", 2)

    def test_deterministic_across_calls(self):
        assert stable_digest("k", 7) == stable_digest("k", 7)


class TestDeriveKey:
    def test_matches_historical_golden_ranking(self):
        # golden.select_spot_checks ranked by sha256("seed:fingerprint").
        seed, fingerprint = 42, "deadbeef" * 8
        expected = hashlib.sha256(
            f"{seed}:{fingerprint}".encode()).hexdigest()
        assert derive_key(seed, fingerprint) == expected

    def test_is_hex_of_digest(self):
        assert derive_key("a", 1) == stable_digest("a", 1).hex()


class TestDeriveFraction:
    def test_matches_historical_backoff_jitter(self):
        # resilience.backoff_delay derived its jitter fraction from the
        # first 8 bytes of sha256("fingerprint:attempt"), big-endian,
        # over 2**64.
        fingerprint, attempt = "abc123", 3
        digest = hashlib.sha256(
            f"{fingerprint}:{attempt}".encode()).digest()
        expected = int.from_bytes(digest[:8], "big") / float(2 ** 64)
        assert derive_fraction(fingerprint, attempt) == expected

    def test_in_unit_interval(self):
        for i in range(64):
            assert 0.0 <= derive_fraction("fp", i) < 1.0


class TestDeriveSeed:
    def test_is_64_bit(self):
        for i in range(64):
            assert 0 <= derive_seed("space", "grid", i) < 2 ** 64

    def test_consistent_with_fraction(self):
        assert (derive_seed("x", 1) / float(2 ** 64)
                == derive_fraction("x", 1))


class TestCallSitesUnchanged:
    """The refactored call sites still produce the historical values."""

    def test_backoff_delay_formula(self):
        policy = RetryPolicy(backoff_base_s=0.05, backoff_cap_s=2.0,
                             jitter=0.5)
        fingerprint = "f" * 64
        for attempt in (1, 2, 5):
            base = min(0.05 * (2 ** (attempt - 1)), 2.0)
            digest = hashlib.sha256(
                f"{fingerprint}:{attempt}".encode()).digest()
            jitter = int.from_bytes(digest[:8], "big") / float(2 ** 64)
            assert backoff_delay(fingerprint, attempt, policy) == (
                base * (1.0 + 0.5 * jitter))

    def test_golden_sample_ranking(self):
        entries = [{"result_fingerprint": f"fp{i:02d}", "i": i}
                   for i in range(12)]
        seed = 7
        expected = sorted(
            entries,
            key=lambda e: hashlib.sha256(
                f"{seed}:{e['result_fingerprint']}".encode()
            ).hexdigest())[:5]
        assert select_spot_checks({"runs": entries}, 5,
                                  seed=seed) == expected

"""Metrics and report rendering."""

import pytest

from repro.analysis.metrics import gmean, normalize, percent_change, speedup
from repro.analysis.report import (
    format_value,
    render_kv,
    render_table,
    series_to_rows,
)
from repro.errors import ExperimentError


class TestMetrics:
    def test_gmean_basic(self):
        assert gmean([2.0, 8.0]) == pytest.approx(4.0)

    def test_gmean_identity(self):
        assert gmean([3.0]) == pytest.approx(3.0)

    def test_gmean_rejects_empty(self):
        with pytest.raises(ExperimentError):
            gmean([])

    def test_gmean_rejects_nonpositive(self):
        with pytest.raises(ExperimentError):
            gmean([1.0, 0.0])

    def test_normalize(self):
        out = normalize({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_normalize_missing_baseline(self):
        with pytest.raises(ExperimentError):
            normalize({"a": 1.0}, "z")

    def test_speedup_eq7(self):
        assert speedup(baseline_cpi=10.0, tech_cpi=5.0) == 2.0

    def test_percent_change(self):
        assert percent_change(2.0, 3.0) == pytest.approx(50.0)


class TestReport:
    def test_format_value(self):
        assert format_value(1.23456, 2) == "1.23"
        assert format_value("x") == "x"

    def test_render_table_alignment(self):
        text = render_table(
            ["name", "v"],
            [{"name": "alpha", "v": 1.5}, {"name": "b", "v": 22.25}],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alpha" in text and "22.250" in text
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows equal width

    def test_render_table_missing_cells(self):
        text = render_table(["a", "b"], [{"a": 1}])
        assert "b" in text

    def test_render_kv(self):
        text = render_kv({"cores": 8, "freq": 4.0}, title="cfg")
        assert "cores" in text and "8" in text

    def test_series_to_rows(self):
        columns, rows = series_to_rows(
            {"w1": {"s1": 1.0, "s2": 2.0}, "w2": {"s1": 3.0}}, "workload"
        )
        assert columns == ["workload", "s1", "s2"]
        assert rows[0]["workload"] == "w1"
        assert rows[1]["s1"] == 3.0


class TestBars:
    def test_render_bars_basic(self):
        from repro.analysis.report import render_bars
        text = render_bars({"fpb": 1.8, "ideal": 2.0}, title="speedup")
        lines = text.splitlines()
        assert lines[0] == "speedup"
        assert "fpb" in text and "1.80" in text
        # The longest bar belongs to the largest value.
        fpb_bar = lines[2].count("#")
        ideal_bar = lines[3].count("#")
        assert ideal_bar > fpb_bar

    def test_reference_marker(self):
        from repro.analysis.report import render_bars
        text = render_bars({"a": 0.5, "b": 2.0}, reference=1.0)
        assert "|" in text

    def test_empty(self):
        from repro.analysis.report import render_bars
        assert render_bars({}, title="t") == "t"

"""Simulation kernel and statistics."""

import pytest

from repro.errors import SimulationError, WatchdogError
from repro.sim.events import SimEngine
from repro.sim.stats import SimStats


class TestSimEngine:
    def test_time_ordering(self):
        engine = SimEngine()
        fired = []
        engine.schedule(20, lambda t: fired.append(("b", t)))
        engine.schedule(10, lambda t: fired.append(("a", t)))
        engine.run()
        assert fired == [("a", 10), ("b", 20)]

    def test_same_time_fifo(self):
        engine = SimEngine()
        fired = []
        for name in "abc":
            engine.schedule(5, lambda t, n=name: fired.append(n))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_schedule_during_run(self):
        engine = SimEngine()
        fired = []

        def first(t):
            engine.schedule_after(3, lambda t2: fired.append(t2))

        engine.schedule(1, first)
        engine.run()
        assert fired == [4]

    def test_run_until(self):
        engine = SimEngine()
        fired = []
        engine.schedule(5, lambda t: fired.append(t))
        engine.schedule(50, lambda t: fired.append(t))
        engine.run(until=10)
        assert fired == [5]
        assert engine.pending == 1

    def test_past_scheduling_rejected(self):
        engine = SimEngine()
        engine.schedule(10, lambda t: engine.schedule(5, lambda t2: None))
        with pytest.raises(SimulationError):
            engine.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimEngine().schedule_after(-1, lambda t: None)

    def test_event_budget(self):
        engine = SimEngine(max_events=10)

        def loop(t):
            engine.schedule_after(1, loop)

        engine.schedule(0, loop)
        with pytest.raises(SimulationError):
            engine.run()


class TestForwardProgressWatchdog:
    def test_same_cycle_livelock_trips(self):
        """Callbacks rescheduling each other at the current cycle never
        advance time; the event budget alone would spin for a long time,
        the forward-progress watchdog trips fast and deterministically."""
        engine = SimEngine(max_same_cycle_events=50)

        def livelock(t):
            engine.schedule_after(0, livelock)

        engine.schedule(5, livelock)
        with pytest.raises(WatchdogError, match="no forward progress"):
            engine.run()
        assert engine.now == 5  # time never advanced
        assert engine.events_processed <= 60  # trips near the threshold

    def test_trips_identically_on_rerun(self):
        """The watchdog counts dispatches, never wall-clock — a failing
        schedule fails at the same event count every time, which is what
        lets the supervisor quarantine it instead of retrying forever."""
        counts = []
        for _ in range(2):
            engine = SimEngine(max_same_cycle_events=30)

            def livelock(t, e=engine):
                e.schedule_after(0, lambda t2, e=e: livelock(t2, e))

            engine.schedule(2, livelock)
            with pytest.raises(WatchdogError):
                engine.run()
            counts.append(engine.events_processed)
        assert counts[0] == counts[1]

    def test_legitimate_same_cycle_fanout_passes(self):
        """Bounded same-cycle bursts (cores x banks worth of events) stay
        far under the threshold and must not trip."""
        engine = SimEngine(max_same_cycle_events=100)
        fired = []
        for i in range(80):
            engine.schedule(7, lambda t, i=i: fired.append(i))
        engine.schedule(9, lambda t: fired.append("later"))
        assert engine.run() == 9
        assert len(fired) == 81

    def test_counter_resets_when_time_advances(self):
        """40 events at each of 10 cycles never accumulates past a
        threshold of 50 — the counter is per-cycle, not global."""
        engine = SimEngine(max_same_cycle_events=50)
        for when in range(10):
            for _ in range(40):
                engine.schedule(when, lambda t: None)
        assert engine.run() == 9
        assert engine.events_processed == 400


class TestSimStats:
    def test_cpi_mean_over_cores(self):
        stats = SimStats()
        stats.core_instructions = [100, 100]
        stats.core_finish_cycles = [200, 400]
        assert stats.cpi == pytest.approx(3.0)

    def test_cpi_empty(self):
        """A run with no memory traffic defines CPI as the in-order
        core's peak of 1.0 (comparisons degrade to 1.0x speedups)."""
        assert SimStats().cpi == 1.0

    def test_burst_fraction(self):
        stats = SimStats(burst_cycles=250, total_cycles=1000)
        assert stats.burst_fraction == 0.25

    def test_write_throughput(self):
        stats = SimStats(writes_done=50, write_active_cycles=100_000)
        assert stats.write_throughput == pytest.approx(0.5)

    def test_gcp_average_counts_all_writes(self):
        """Figure 14 averages over *all* line writes, including those
        that never used the GCP."""
        stats = SimStats(
            writes_done=10, gcp_used_writes=2, gcp_tokens_per_write_sum=40.0,
        )
        assert stats.mean_gcp_tokens_per_write == pytest.approx(4.0)

    def test_latency_means(self):
        stats = SimStats(reads_done=4, read_latency_sum=4000)
        assert stats.mean_read_latency == 1000.0

    def test_summary_keys(self):
        summary = SimStats().summary()
        for key in ("cycles", "cpi", "burst_fraction", "write_throughput"):
            assert key in summary

"""Units for the fleet's pure parts: the consistent-hash ring and the
per-replica circuit breaker. Process supervision, failover and degraded
serving are integration-tested in
``tests/integration/test_fleet_chaos``."""

from __future__ import annotations

import pytest

from repro.service.fleet import (
    CLOSED,
    DEAD,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    HashRing,
)


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def breaker(**overrides) -> CircuitBreaker:
    defaults = dict(failure_threshold=3, cooldown_s=5.0)
    defaults.update(overrides)
    return CircuitBreaker(**defaults)


class TestCircuitBreaker:
    def test_starts_closed_and_routable(self):
        b = breaker()
        assert b.state == CLOSED
        assert b.routable()

    def test_opens_after_consecutive_failure_threshold(self):
        b = breaker(failure_threshold=3)
        assert b.record_failure() is False
        assert b.record_failure() is False
        assert b.state == CLOSED
        assert b.record_failure() is True  # third strike opens
        assert b.state == OPEN
        assert not b.routable()
        assert b.opens == 1

    def test_success_resets_the_failure_streak(self):
        b = breaker(failure_threshold=2)
        b.record_failure()
        b.record_success()
        assert b.consecutive_failures == 0
        assert b.record_failure() is False  # streak restarted
        assert b.state == CLOSED

    def test_cooldown_transitions_open_to_half_open_lazily(self):
        clock = FakeClock()
        b = breaker(cooldown_s=5.0, clock=clock)
        b.trip()
        assert b.state == OPEN
        clock.advance(4.9)
        assert b.state == OPEN
        clock.advance(0.2)
        assert b.state == HALF_OPEN
        assert b.routable()  # the next routed job is the probe

    def test_half_open_probe_failure_reopens_immediately(self):
        clock = FakeClock()
        b = breaker(failure_threshold=3, cooldown_s=1.0, clock=clock)
        b.trip()
        clock.advance(1.5)
        assert b.state == HALF_OPEN
        assert b.record_failure() is True  # one probe failure suffices
        assert b.state == OPEN
        assert b.opens == 2

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        b = breaker(cooldown_s=1.0, clock=clock)
        b.trip()
        clock.advance(2.0)
        assert b.state == HALF_OPEN
        b.record_success()
        assert b.state == CLOSED
        assert b.routable()

    def test_trip_is_idempotent_while_open(self):
        b = breaker()
        b.trip()
        b.trip()
        assert b.opens == 1

    def test_kill_is_terminal(self):
        clock = FakeClock()
        b = breaker(cooldown_s=0.1, clock=clock)
        b.kill()
        assert b.state == DEAD
        assert not b.routable()
        # No event revives a dead breaker — not cooldown, not success.
        clock.advance(100.0)
        b.record_success()
        b.half_open()
        assert b.state == DEAD

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_snapshot_reports_state_and_counters(self):
        b = breaker(failure_threshold=2, cooldown_s=3.0)
        b.record_failure()
        snap = b.snapshot()
        assert snap == {
            "state": CLOSED,
            "consecutive_failures": 1,
            "opens": 0,
            "failure_threshold": 2,
            "cooldown_s": 3.0,
        }


KEYS = [f"workload-{i}/scheme/{i:04x}" for i in range(200)]


class TestHashRing:
    def test_rejects_degenerate_rings(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)

    def test_routing_is_deterministic_across_instances(self):
        a, b = HashRing(4), HashRing(4)
        for key in KEYS:
            assert a.preference(key) == b.preference(key)

    def test_preference_covers_every_slot_exactly_once(self):
        ring = HashRing(5)
        for key in KEYS[:50]:
            order = ring.preference(key)
            assert sorted(order) == [0, 1, 2, 3, 4]

    def test_load_spreads_across_slots(self):
        ring = HashRing(4)
        owners = [ring.preference(key)[0] for key in KEYS]
        counts = [owners.count(slot) for slot in range(4)]
        # Not perfectly uniform, but no slot starves or hogs the ring.
        assert all(count > 0 for count in counts)
        assert max(counts) < len(KEYS) * 0.6

    def test_route_returns_first_routable_in_preference_order(self):
        ring = HashRing(3)
        key = KEYS[0]
        order = ring.preference(key)
        assert ring.route(key, lambda s: True) == order[0]
        # Primary down: the walk continues to the next preference.
        assert ring.route(key, lambda s: s != order[0]) == order[1]

    def test_route_returns_none_when_ring_is_down(self):
        ring = HashRing(3)
        assert ring.route(KEYS[0], lambda s: False) is None

    def test_failover_moves_only_the_dead_slots_keys(self):
        """Consistent hashing's point: marking one slot unroutable
        relocates exactly the keys it owned — everyone else's placement
        is untouched."""
        ring = HashRing(4)
        before = {key: ring.route(key, lambda s: True) for key in KEYS}
        dead = 2
        after = {key: ring.route(key, lambda s: s != dead)
                 for key in KEYS}
        for key in KEYS:
            if before[key] == dead:
                assert after[key] != dead
            else:
                assert after[key] == before[key]

"""Service-layer policy units: LRU result-cache trimming and the
admission EWMA's sample hygiene. Pure in-process tests — the gateway's
HTTP behaviour lives in ``tests/integration/test_service_gateway``."""

from __future__ import annotations

import pytest

from repro.experiments.base import _SIM_CACHE, cache_get, clear_sim_cache
from repro.service.admission import (
    DEFAULT_RUN_SECONDS,
    AdmissionQueue,
    EWMA_ALPHA,
)
from repro.service.app import Gateway


@pytest.fixture(autouse=True)
def clean_cache():
    clear_sim_cache()
    yield
    clear_sim_cache()


class TestCacheGetLRU:
    def test_hit_moves_entry_to_the_back(self):
        for key in ("a", "b", "c"):
            _SIM_CACHE[key] = f"result-{key}"
        assert cache_get("a") == "result-a"
        # Dict order is the eviction order: "a" is now the most recent.
        assert list(_SIM_CACHE) == ["b", "c", "a"]

    def test_miss_returns_none_without_reordering(self):
        _SIM_CACHE["a"] = "result-a"
        assert cache_get("nope") is None
        assert list(_SIM_CACHE) == ["a"]


class TestGatewayTrimIsLRU:
    def _gateway(self, limit):
        return Gateway(memory_cache_limit=limit)

    def test_recently_used_survives_the_trim(self):
        """The policy test the bugfix demands: a popular entry touched
        after colder ones must survive a trim that evicts by recency,
        and would *not* survive the old FIFO (insertion-order) trim."""
        gateway = self._gateway(limit=3)
        for key in ("old1", "old2", "hot", "new1", "new2"):
            _SIM_CACHE[key] = key
        assert cache_get("hot") == "hot"  # refresh: FIFO would ignore this
        gateway._trim_sim_cache()
        assert set(_SIM_CACHE) == {"new1", "new2", "hot"}

    def test_without_touches_trim_degrades_to_fifo(self):
        gateway = self._gateway(limit=2)
        for key in ("a", "b", "c", "d"):
            _SIM_CACHE[key] = key
        gateway._trim_sim_cache()
        assert set(_SIM_CACHE) == {"c", "d"}

    def test_under_limit_is_untouched(self):
        gateway = self._gateway(limit=10)
        _SIM_CACHE["a"] = "a"
        gateway._trim_sim_cache()
        assert list(_SIM_CACHE) == ["a"]


class TestAdmissionSampleHygiene:
    def test_positive_sample_folds_into_ewma(self):
        queue = AdmissionQueue(limit=4)
        queue.observe_run_seconds(10.0)
        expected = (DEFAULT_RUN_SECONDS
                    + EWMA_ALPHA * (10.0 - DEFAULT_RUN_SECONDS))
        assert queue.ewma_run_s == pytest.approx(expected)
        assert queue.ewma_rejected_samples == 0

    @pytest.mark.parametrize("bad", [0.0, -0.001, -5.0])
    def test_non_positive_sample_counted_not_folded(self, bad, caplog):
        queue = AdmissionQueue(limit=4)
        with caplog.at_level("WARNING", logger="repro.service.admission"):
            queue.observe_run_seconds(bad)
        assert queue.ewma_run_s == DEFAULT_RUN_SECONDS
        assert queue.ewma_rejected_samples == 1
        assert any("non-positive service-time sample" in rec.message
                   for rec in caplog.records)
        assert queue.snapshot()["ewma_rejected_samples"] == 1

    def test_rejected_sample_hook_fires(self):
        queue = AdmissionQueue(limit=4)
        fired = []
        queue.on_rejected_sample = lambda: fired.append(1)
        queue.observe_run_seconds(-1.0)
        queue.observe_run_seconds(1.0)
        assert fired == [1]

    def test_gateway_wires_the_rejection_counter(self):
        gateway = Gateway()
        gateway.admission.observe_run_seconds(-1.0)
        counters = gateway.registry.snapshot()["counters"]
        assert counters["service_ewma_rejected_samples"] == 1

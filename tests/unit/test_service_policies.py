"""Service-layer policy units: LRU result-cache trimming, the
admission EWMA's sample hygiene, the Retry-After clamp, cancelled-
waiter accounting in the coalescer, and the ``/watch`` write-side
dead-client guard. Pure in-process tests — the gateway's HTTP
behaviour lives in ``tests/integration/test_service_gateway``."""

from __future__ import annotations

import asyncio

import pytest

from repro.experiments.base import _SIM_CACHE, cache_get
from repro.service.admission import (
    DEFAULT_RETRY_AFTER_CAP_S,
    DEFAULT_RUN_SECONDS,
    AdmissionQueue,
    EWMA_ALPHA,
)
from repro.service.app import _WatchStreamGuard, Gateway
from repro.service.coalescer import Coalescer


@pytest.fixture(autouse=True)
def clean_state(isolated_run_state):
    yield


class TestCacheGetLRU:
    def test_hit_moves_entry_to_the_back(self):
        for key in ("a", "b", "c"):
            _SIM_CACHE[key] = f"result-{key}"
        assert cache_get("a") == "result-a"
        # Dict order is the eviction order: "a" is now the most recent.
        assert list(_SIM_CACHE) == ["b", "c", "a"]

    def test_miss_returns_none_without_reordering(self):
        _SIM_CACHE["a"] = "result-a"
        assert cache_get("nope") is None
        assert list(_SIM_CACHE) == ["a"]


class TestGatewayTrimIsLRU:
    def _gateway(self, limit):
        return Gateway(memory_cache_limit=limit)

    def test_recently_used_survives_the_trim(self):
        """The policy test the bugfix demands: a popular entry touched
        after colder ones must survive a trim that evicts by recency,
        and would *not* survive the old FIFO (insertion-order) trim."""
        gateway = self._gateway(limit=3)
        for key in ("old1", "old2", "hot", "new1", "new2"):
            _SIM_CACHE[key] = key
        assert cache_get("hot") == "hot"  # refresh: FIFO would ignore this
        gateway._trim_sim_cache()
        assert set(_SIM_CACHE) == {"new1", "new2", "hot"}

    def test_without_touches_trim_degrades_to_fifo(self):
        gateway = self._gateway(limit=2)
        for key in ("a", "b", "c", "d"):
            _SIM_CACHE[key] = key
        gateway._trim_sim_cache()
        assert set(_SIM_CACHE) == {"c", "d"}

    def test_under_limit_is_untouched(self):
        gateway = self._gateway(limit=10)
        _SIM_CACHE["a"] = "a"
        gateway._trim_sim_cache()
        assert list(_SIM_CACHE) == ["a"]


class TestAdmissionSampleHygiene:
    def test_positive_sample_folds_into_ewma(self):
        queue = AdmissionQueue(limit=4)
        queue.observe_run_seconds(10.0)
        expected = (DEFAULT_RUN_SECONDS
                    + EWMA_ALPHA * (10.0 - DEFAULT_RUN_SECONDS))
        assert queue.ewma_run_s == pytest.approx(expected)
        assert queue.ewma_rejected_samples == 0

    @pytest.mark.parametrize("bad", [0.0, -0.001, -5.0])
    def test_non_positive_sample_counted_not_folded(self, bad, caplog):
        queue = AdmissionQueue(limit=4)
        with caplog.at_level("WARNING", logger="repro.service.admission"):
            queue.observe_run_seconds(bad)
        assert queue.ewma_run_s == DEFAULT_RUN_SECONDS
        assert queue.ewma_rejected_samples == 1
        assert any("non-positive service-time sample" in rec.message
                   for rec in caplog.records)
        assert queue.snapshot()["ewma_rejected_samples"] == 1

    def test_rejected_sample_hook_fires(self):
        queue = AdmissionQueue(limit=4)
        fired = []
        queue.on_rejected_sample = lambda: fired.append(1)
        queue.observe_run_seconds(-1.0)
        queue.observe_run_seconds(1.0)
        assert fired == [1]

    def test_gateway_wires_the_rejection_counter(self):
        gateway = Gateway()
        gateway.admission.observe_run_seconds(-1.0)
        counters = gateway.registry.snapshot()["counters"]
        assert counters["service_ewma_rejected_samples"] == 1


class TestRetryAfterClamp:
    def test_small_backlog_estimate_passes_through(self):
        queue = AdmissionQueue(limit=8)
        # Empty queue, default EWMA prior: ceil(1 * 2.0 / 1) = 2 s.
        assert queue.retry_after_s() == 2
        assert queue.retry_after_clamped == 0

    def test_deep_backlog_is_clamped_to_the_cap(self):
        queue = AdmissionQueue(limit=8)
        queue.ewma_run_s = 3600.0  # an hour per run: "come back never"
        assert queue.retry_after_s() == DEFAULT_RETRY_AFTER_CAP_S
        assert queue.retry_after_clamped == 1
        snap = queue.snapshot()
        assert snap["retry_after_cap_s"] == DEFAULT_RETRY_AFTER_CAP_S
        assert snap["retry_after_clamped"] == 1

    def test_cap_is_configurable(self):
        queue = AdmissionQueue(limit=8, retry_after_cap_s=5)
        queue.ewma_run_s = 100.0
        assert queue.retry_after_s() == 5

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            AdmissionQueue(limit=8, retry_after_cap_s=0)


class TestCancelledWaiterAccounting:
    def test_abandon_decrements_waiters_and_counts(self):
        async def scenario():
            c = Coalescer()
            leader = c.lease("k")
            follower = c.lease("k")
            assert c.waiters("k") == 2
            c.abandon(follower)
            assert c.waiters("k") == 1
            assert c.cancelled_waiters == 1
            assert c.snapshot()["cancelled_waiters"] == 1
            leader.future.set_result(None)  # silence "never retrieved"

        asyncio.run(scenario())

    def test_abandon_after_resolution_is_a_noop(self):
        async def scenario():
            c = Coalescer()
            lease = c.lease("k")
            assert c.resolve("k", "result") == 1
            c.abandon(lease)  # late cancellation: entry already gone
            assert c.cancelled_waiters == 0

        asyncio.run(scenario())

    def test_abandon_never_touches_a_successor_entry(self):
        """A stale lease from a *previous* in-flight run of the same
        fingerprint must not corrupt the waiter count of the current
        one."""
        async def scenario():
            c = Coalescer()
            stale = c.lease("k")
            c.resolve("k", "first result")
            successor = c.lease("k")  # same key, new entry
            c.abandon(stale)
            assert c.waiters("k") == 1
            assert c.cancelled_waiters == 0
            successor.future.set_result(None)

        asyncio.run(scenario())

    def test_cancelled_wait_abandons_without_unshielding(self):
        """Cancelling one waiter's task removes it from the count but
        leaves the shared future running; the surviving waiter still
        gets the result."""
        async def scenario():
            c = Coalescer()
            leader = c.lease("k")
            follower = c.lease("k")
            task = asyncio.ensure_future(follower.wait())
            await asyncio.sleep(0)  # let the waiter reach the shield
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert not leader.future.cancelled()
            assert c.waiters("k") == 1
            assert c.cancelled_waiters == 1
            leader.future.set_result("result")
            assert await leader.wait() == "result"

        asyncio.run(scenario())


class StubWriter:
    """Just enough StreamWriter for the watch guard: records chunks,
    stalls on demand."""

    def __init__(self):
        self.stalled = False
        self.chunks = []

    def write(self, data: bytes) -> None:
        self.chunks.append(data)

    async def drain(self) -> None:
        if self.stalled:
            await asyncio.sleep(60)


class TestWatchStreamGuard:
    def test_healthy_writes_frame_chunks_and_keep_streak_zero(self):
        async def scenario():
            writer = StubWriter()
            guard = _WatchStreamGuard(writer, timeout_s=0.5, max_stalls=3)
            await guard.send({"event": "run"})
            assert guard.stalls == 0
            chunk = writer.chunks[0]
            size, _, rest = chunk.partition(b"\r\n")
            body = rest[: int(size, 16)]
            assert body.endswith(b"\n")
            assert b'"event": "run"' in body

        asyncio.run(scenario())

    def test_consecutive_stalls_drop_the_client(self):
        async def scenario():
            writer = StubWriter()
            writer.stalled = True
            drops = []
            guard = _WatchStreamGuard(
                writer, timeout_s=0.01, max_stalls=3,
                on_drop=lambda: drops.append(1))
            await guard.send({"n": 1})  # stall 1: tolerated
            await guard.send({"n": 2})  # stall 2: tolerated
            with pytest.raises(ConnectionError):
                await guard.send({"n": 3})  # stall 3: dropped
            assert drops == [1]

        asyncio.run(scenario())

    def test_one_successful_drain_resets_the_streak(self):
        async def scenario():
            writer = StubWriter()
            guard = _WatchStreamGuard(writer, timeout_s=0.01,
                                      max_stalls=2)
            writer.stalled = True
            await guard.send({"n": 1})
            assert guard.stalls == 1
            writer.stalled = False
            await guard.send({"n": 2})  # slow-but-alive client recovers
            assert guard.stalls == 0
            writer.stalled = True
            await guard.send({"n": 3})  # streak restarts from zero
            assert guard.stalls == 1

        asyncio.run(scenario())

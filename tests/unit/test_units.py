"""Unit-conversion helpers."""

import pytest

from repro.errors import ConfigError
from repro.units import (
    bytes_to_cells,
    cycles_to_ns,
    ns_to_cycles,
    power_to_tokens,
    reset_set_ratio,
    tokens_to_power,
)


class TestNsToCycles:
    def test_table1_read_latency(self):
        assert ns_to_cycles(250.0, 4.0) == 1000

    def test_table1_reset_latency(self):
        assert ns_to_cycles(125.0, 4.0) == 500

    def test_rounds_to_nearest(self):
        assert ns_to_cycles(0.6, 1.0) == 1

    def test_zero(self):
        assert ns_to_cycles(0.0, 4.0) == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigError):
            ns_to_cycles(-1.0, 4.0)

    def test_bad_frequency_rejected(self):
        with pytest.raises(ConfigError):
            ns_to_cycles(1.0, 0.0)

    def test_roundtrip(self):
        assert cycles_to_ns(ns_to_cycles(250.0, 4.0), 4.0) == 250.0


class TestTokens:
    def test_reset_is_one_token(self):
        assert power_to_tokens(480.0, 480.0) == 1.0

    def test_set_fraction(self):
        assert power_to_tokens(90.0, 480.0) == pytest.approx(0.1875)

    def test_tokens_to_power_roundtrip(self):
        assert tokens_to_power(power_to_tokens(240.0, 480.0), 480.0) == 240.0

    def test_zero_reset_power_rejected(self):
        with pytest.raises(ConfigError):
            power_to_tokens(100.0, 0.0)


class TestResetSetRatio:
    def test_table1_value(self):
        assert reset_set_ratio(480.0, 90.0) == pytest.approx(16 / 3)

    def test_figure5_illustrative_value(self):
        assert reset_set_ratio(100.0, 50.0) == 2.0

    def test_set_above_reset_rejected(self):
        with pytest.raises(ConfigError):
            reset_set_ratio(50.0, 100.0)

    def test_zero_set_rejected(self):
        with pytest.raises(ConfigError):
            reset_set_ratio(100.0, 0.0)


class TestBytesToCells:
    def test_mlc_line(self):
        assert bytes_to_cells(256, 2) == 1024

    def test_slc_line(self):
        assert bytes_to_cells(256, 1) == 2048

    def test_64b_line(self):
        assert bytes_to_cells(64, 2) == 256

    def test_unsupported_bits(self):
        with pytest.raises(ConfigError):
            bytes_to_cells(64, 3)

    def test_negative_bytes(self):
        with pytest.raises(ConfigError):
            bytes_to_cells(-1, 2)

"""Public API surface: every exported name resolves."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.analysis",
    "repro.cache",
    "repro.config",
    "repro.core",
    "repro.core.policies",
    "repro.experiments",
    "repro.obs",
    "repro.pcm",
    "repro.power",
    "repro.sim",
    "repro.trace",
    "repro.trace.synthetic",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_version():
    assert repro.__version__


def test_headline_api_shape():
    """The README quickstart snippet's names exist with the documented
    signatures."""
    config = repro.baseline_config()
    assert config.cpu.cores == 8
    assert callable(repro.run_schemes)
    assert callable(repro.run_simulation)
    assert "fpb" in repro.available_schemes()
    assert "lbm_m" in repro.available_workloads()
    assert "fig16" in repro.available_experiments()


def test_errors_hierarchy():
    for name in ("ConfigError", "TokenError", "TraceError",
                 "SimulationError", "SchedulingError", "MappingError",
                 "ExperimentError", "BudgetExceededError"):
        err = getattr(repro, name)
        assert issubclass(err, repro.ReproError)


def test_extension_modules_reachable():
    from repro.pcm import (
        DriftModel, FlipNWrite, LineECC, MorphableMemory, StartGap,
        WearTracker,
    )
    for cls in (DriftModel, FlipNWrite, LineECC, MorphableMemory,
                StartGap, WearTracker):
        assert cls.__doc__

"""LineStore, PCMBank occupancy, and DIMM assembly."""

import numpy as np
import pytest

from repro.config import baseline_config
from repro.errors import SchedulingError, TraceError
from repro.pcm.bank import PCMBank
from repro.pcm.contents import LineStore
from repro.pcm.dimm import DIMM


class TestLineStore:
    def test_unwritten_lines_read_zero(self):
        store = LineStore(256)
        assert (store.read(0) == 0).all()
        assert len(store) == 0

    def test_write_read_roundtrip(self):
        store = LineStore(64)
        data = np.arange(64, dtype=np.uint8)
        store.write(128, data)
        assert (store.read(128) == data).all()

    def test_read_returns_copy(self):
        store = LineStore(64)
        store.write(0, np.ones(64, dtype=np.uint8))
        view = store.read(0)
        view[0] = 99
        assert store.read(0)[0] == 1

    def test_unaligned_rejected(self):
        store = LineStore(64)
        with pytest.raises(TraceError):
            store.read(1)
        with pytest.raises(TraceError):
            store.write(63, np.zeros(64, dtype=np.uint8))

    def test_wrong_size_rejected(self):
        store = LineStore(64)
        with pytest.raises(TraceError):
            store.write(0, np.zeros(32, dtype=np.uint8))

    def test_write_bytes_within_line(self):
        store = LineStore(64)
        store.write_bytes(8, b"\x01\x02\x03")
        line = store.read(0)
        assert line[8:11].tolist() == [1, 2, 3]
        assert line[11] == 0

    def test_write_bytes_spanning_lines(self):
        store = LineStore(16)
        store.write_bytes(14, b"\xaa\xbb\xcc\xdd")
        assert store.read(0)[14:16].tolist() == [0xAA, 0xBB]
        assert store.read(16)[0:2].tolist() == [0xCC, 0xDD]

    def test_contains_and_addresses(self):
        store = LineStore(64)
        store.write(64, np.zeros(64, dtype=np.uint8))
        assert 64 in store
        assert 0 not in store
        assert list(store.addresses()) == [64]


class TestPCMBank:
    def test_initially_free(self):
        assert PCMBank(0).is_free(0)

    def test_read_occupies(self):
        bank = PCMBank(0)
        done = bank.start_read(10, 1000)
        assert done == 1010
        assert not bank.is_free(500)
        assert bank.is_free(1010)
        assert bank.reads_served == 1

    def test_read_while_busy_rejected(self):
        bank = PCMBank(0)
        bank.start_read(0, 1000)
        with pytest.raises(SchedulingError):
            bank.start_read(500, 1000)

    def test_write_lifecycle(self):
        bank = PCMBank(0)
        marker = object()
        bank.start_write(0, marker)
        assert not bank.is_free(0)
        bank.finish_write(5000, marker)
        assert bank.is_free(5000)
        assert bank.writes_served == 1

    def test_finish_wrong_write_rejected(self):
        bank = PCMBank(0)
        bank.start_write(0, object())
        with pytest.raises(SchedulingError):
            bank.finish_write(100, object())

    def test_detach_does_not_count(self):
        bank = PCMBank(0)
        marker = object()
        bank.start_write(0, marker)
        bank.detach_write(marker)
        assert bank.is_free(0)
        assert bank.writes_served == 0


class TestDIMM:
    def test_geometry(self):
        dimm = DIMM(baseline_config())
        assert len(dimm.chips) == 8
        assert len(dimm.banks) == 8
        assert dimm.cells_per_line == 1024

    def test_bank_interleaving(self):
        dimm = DIMM(baseline_config())
        assert dimm.bank_of(0) == 0
        assert dimm.bank_of(256) == 1
        assert dimm.bank_of(256 * 8) == 0

    def test_chip_budgets_follow_eq4(self):
        dimm = DIMM(baseline_config())
        assert dimm.chips[0].budget == pytest.approx(66.5)

    def test_timing_from_table1(self):
        dimm = DIMM(baseline_config())
        assert dimm.timing.read_cycles == 1000
        assert dimm.timing.reset_cycles == 500
        assert dimm.timing.set_cycles == 1000

    def test_chip_counts_delegates_to_mapping(self):
        dimm = DIMM(baseline_config())
        counts = dimm.chip_counts(np.arange(128))
        assert counts[0] == 128  # naive: first 128 cells on chip 0

    def test_write_latency_helper(self):
        dimm = DIMM(baseline_config())
        # 1 RESET + 7 SETs at Table 1 latencies.
        assert dimm.timing.write_cycles(8, 1) == 500 + 7 * 1000
        # Multi-RESET(3): 3 RESETs + 5 SETs.
        assert dimm.timing.write_cycles(8, 3) == 3 * 500 + 5 * 1000

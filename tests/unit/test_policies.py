"""Power-manager mechanics beyond the paper examples."""

import numpy as np
import pytest

from repro.core.policies.base import PowerManager
from repro.core.write_op import WriteOperation
from repro.pcm.dimm import DIMM

from ..conftest import make_figure5_config, make_tiny_config


def spread_write(write_id, dimm, n_cells, count=2):
    idx = np.linspace(0, dimm.cells_per_line - 1, n_cells).astype(np.int64)
    return WriteOperation(
        write_id, 0, 0, np.unique(idx),
        np.full(np.unique(idx).size, count, dtype=np.int64), dimm.mapping,
    )


class TestIdeal:
    def test_never_blocks(self):
        config = make_tiny_config()
        dimm = DIMM(config)
        manager = PowerManager(
            config, dimm, enforce_dimm=False, enforce_chip=False,
        )
        for wid in range(50):
            w = spread_write(wid, dimm, 900)
            assert manager.try_issue(w, 0)


class TestDimmOnly:
    def test_budget_in_input_power(self):
        """A usable token costs 1/E_LCP of the DIMM input budget."""
        config = make_tiny_config()
        dimm = DIMM(config)
        manager = PowerManager(
            config, dimm, enforce_dimm=True, enforce_chip=False,
        )
        w = spread_write(1, dimm, 500)
        assert manager.try_issue(w, 0)
        expected = w.n_changed / config.power.lcp_efficiency
        assert manager.dimm_pool.allocated == pytest.approx(expected)

    def test_release_on_done(self):
        config = make_figure5_config()
        dimm = DIMM(config)
        manager = PowerManager(
            config, dimm, enforce_dimm=True, enforce_chip=False,
        )
        w = spread_write(1, dimm, 40)
        assert manager.try_issue(w, 0)
        assert manager.on_iteration_end(w, 0, 1) == "advance"
        # Per-write budgeting keeps the full allocation until completion.
        assert manager.dimm_pool.available == pytest.approx(40.0)
        assert manager.on_iteration_end(w, 1, 2) == "done"
        assert manager.dimm_pool.available == pytest.approx(80.0)


class TestChipEnforcement:
    def test_hot_chip_blocks_without_gcp(self):
        config = make_tiny_config()
        dimm = DIMM(config)
        manager = PowerManager(
            config, dimm, enforce_dimm=True, enforce_chip=True,
        )
        # All changes on chip 0 (naive: cells 0..127).
        idx = np.arange(60)
        w1 = WriteOperation(1, 0, 0, idx, np.full(60, 2), dimm.mapping)
        w2 = WriteOperation(2, 0, 1, idx, np.full(60, 2), dimm.mapping)
        assert manager.try_issue(w1, 0)
        assert not manager.try_issue(w2, 0)  # 120 > 66.5 on chip 0
        assert manager.fail_counts["chip"] == 1

    def test_gcp_unblocks_hot_chip(self):
        config = make_tiny_config()
        dimm = DIMM(config)
        manager = PowerManager(
            config, dimm, enforce_dimm=True, enforce_chip=True,
            gcp_enabled=True,
        )
        idx = np.arange(40)
        w1 = WriteOperation(1, 0, 0, idx, np.full(40, 2), dimm.mapping)
        w2 = WriteOperation(2, 0, 1, idx, np.full(40, 2), dimm.mapping)
        assert manager.try_issue(w1, 0)
        assert manager.try_issue(w2, 0)  # second segment rides the GCP
        assert manager.gcp.output_in_use == pytest.approx(40.0)


class TestStallResume:
    def test_stall_holds_nothing(self):
        """A write that cannot afford its next iteration stalls holding
        zero tokens (a stalled write applies no pulses)."""
        config = make_figure5_config()
        dimm = DIMM(config)
        manager = PowerManager(
            config, dimm, enforce_dimm=True, enforce_chip=False, ipm=True,
            mr_splits=2,
        )
        # w1 fits whole (70 <= 80). w2's cells all sit in the *second*
        # position-group of chip 0, so after Multi-RESET its group 1 is
        # empty (0 tokens) and group 2 needs all 40 — which exceeds the
        # 10 remaining tokens at the boundary.
        w1 = spread_write(1, dimm, 70)
        idx = np.arange(64, 104)
        w2 = WriteOperation(
            2, 0, 1, idx, np.full(idx.size, 2), dimm.mapping, mr_splits=2,
        )
        assert w2.group_totals.tolist() == [0, 40]
        assert manager.try_issue(w1, 0)   # RESET: 70 tokens
        assert manager.try_issue(w2, 0)   # empty group 1: 0 tokens
        outcome = manager.on_iteration_end(w2, 0, 1)
        assert outcome == "stall"
        # The stalled write holds nothing.
        holding = manager.holding_for(w2)
        assert holding.dimm == 0.0

    def test_resume_after_release(self):
        config = make_figure5_config()
        dimm = DIMM(config)
        manager = PowerManager(
            config, dimm, enforce_dimm=True, enforce_chip=False, ipm=True,
        )
        w1 = spread_write(1, dimm, 70)
        w2 = spread_write(2, dimm, 40)
        assert manager.try_issue(w1, 0)
        assert not manager.try_issue(w2, 0)   # 40 > 10 available
        assert manager.on_iteration_end(w1, 0, 1) == "advance"  # 70 -> 35
        w2.current_iteration = 0
        assert manager.try_resume(w2, 1)      # 40 <= 45 now

    def test_required_rounds_per_write(self):
        config = make_figure5_config()  # 80-token budget
        dimm = DIMM(config)
        manager = PowerManager(
            config, dimm, enforce_dimm=True, enforce_chip=False,
        )
        small = spread_write(1, dimm, 50)
        large = spread_write(2, dimm, 200)
        assert manager.required_rounds(small) == 1
        assert manager.required_rounds(large) == 3  # ceil(200/80)

    def test_required_rounds_with_multireset(self):
        config = make_figure5_config()
        dimm = DIMM(config)
        manager = PowerManager(
            config, dimm, enforce_dimm=True, enforce_chip=False, ipm=True,
            mr_splits=3,
        )
        large = spread_write(1, dimm, 200)
        # 3 RESET groups of ~67 <= 80 -> one round suffices.
        assert manager.required_rounds(large) == 1


class TestPWL:
    def test_offsets_rotate_over_writes(self):
        config = make_tiny_config()
        dimm = DIMM(config)
        manager = PowerManager(
            config, dimm, enforce_dimm=True, enforce_chip=True, pwl=True,
        )
        offsets = {manager.line_offset(4096) for _ in range(400)}
        assert len(offsets) > 1  # re-randomized every 8..100 writes

    def test_disabled_by_default(self):
        config = make_tiny_config()
        dimm = DIMM(config)
        manager = PowerManager(config, dimm)
        assert manager.line_offset(4096) == 0


class TestRequiredRoundsUnits:
    def test_input_power_units_regression(self):
        """A write of 532 < n <= 560 cells fits the 560-token budget in
        usable-token terms but not in input-power terms (n / E_LCP);
        required_rounds must split it or the queue head deadlocks."""
        from ..conftest import make_tiny_config
        config = make_tiny_config()  # E_LCP = 0.95, budget 560
        dimm = DIMM(config)
        manager = PowerManager(
            config, dimm, enforce_dimm=True, enforce_chip=False,
        )
        w = spread_write(1, dimm, 550)
        rounds = manager.required_rounds(w)
        assert rounds >= 2
        # And a compliant write must be issuable when alone.
        ok = spread_write(2, dimm, 530)
        assert manager.required_rounds(ok) == 1
        assert manager.try_issue(ok, 0)

"""The fault-injection harness itself: plan parsing and firing rules.

If the harness misfires — wrong point, wrong call, burning another
spec's counters — every chaos test built on it is meaningless, so its
selection semantics are pinned here first.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import WatchdogError
from repro.testing.faults import (
    ENV_VAR,
    FaultSpec,
    clear_faults,
    corrupt_payload,
    install_faults,
    maybe_inject,
    parse_plan,
)


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    clear_faults()
    yield
    clear_faults()


class TestSpecValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultSpec(point="cache_put", mode="explode")

    def test_unknown_error_type_rejected(self):
        """The error set is closed — a plan can never name arbitrary
        code (no ``SystemExit``, no dotted paths)."""
        with pytest.raises(ValueError, match="unknown fault error type"):
            FaultSpec(point="cache_put", error="SystemExit")

    def test_nth_is_one_based(self):
        with pytest.raises(ValueError):
            FaultSpec(point="cache_put", nth=0)

    def test_library_error_types_resolvable(self):
        spec = FaultSpec(point="worker_run", error="WatchdogError")
        assert spec.resolve_error() is WatchdogError


class TestParsePlan:
    def test_round_trip(self):
        raw = json.dumps([{"point": "worker_run", "mode": "crash",
                           "match": "tig_m/fpb", "exit_code": 7}])
        [spec] = parse_plan(raw)
        assert (spec.point, spec.mode, spec.match, spec.exit_code) == \
            ("worker_run", "crash", "tig_m/fpb", 7)

    def test_rejects_bad_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            parse_plan("{nope")

    def test_rejects_non_list(self):
        with pytest.raises(ValueError, match="JSON list"):
            parse_plan('{"point": "cache_put"}')

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault spec fields"):
            parse_plan('[{"point": "cache_put", "when": "always"}]')

    def test_rejects_non_object_entries(self):
        with pytest.raises(ValueError, match="must be an object"):
            parse_plan('["cache_put"]')


class TestFiring:
    def test_noop_without_plan(self):
        maybe_inject("worker_run", key="anything")  # must not raise

    def test_error_mode_raises_chosen_type_and_message(self):
        install_faults([FaultSpec(point="cache_put", error="OSError",
                                  message="disk gone")])
        with pytest.raises(OSError, match="disk gone"):
            maybe_inject("cache_put", key="k")

    def test_point_and_match_select_the_call(self):
        install_faults([FaultSpec(point="worker_run", match="tig_m/fpb")])
        maybe_inject("cache_put", key="tig_m/fpb/aaaa")     # wrong point
        maybe_inject("worker_run", key="tig_m/ideal/aaaa")  # wrong key
        with pytest.raises(OSError):
            maybe_inject("worker_run", key="tig_m/fpb/aaaa")

    def test_nth_skips_earlier_calls_then_keeps_firing(self):
        """``times=None`` from ``nth`` on — the shape of a
        deterministically-broken run."""
        install_faults([FaultSpec(point="serial_run", nth=3)])
        maybe_inject("serial_run")
        maybe_inject("serial_run")
        for _ in range(2):
            with pytest.raises(OSError):
                maybe_inject("serial_run")

    def test_times_bounds_total_firings(self):
        install_faults([FaultSpec(point="serial_run", times=1)])
        with pytest.raises(OSError):
            maybe_inject("serial_run")
        maybe_inject("serial_run")  # spent

    def test_stamp_makes_a_cross_process_one_shot(self, tmp_path):
        stamp = str(tmp_path / "fired.stamp")
        install_faults([FaultSpec(point="serial_run", stamp=stamp)])
        with pytest.raises(OSError):
            maybe_inject("serial_run")
        assert (tmp_path / "fired.stamp").exists()
        maybe_inject("serial_run")  # stamp claimed: never again
        # a fresh plan (standing in for a fresh process) honours it too
        install_faults([FaultSpec(point="serial_run", stamp=stamp)])
        maybe_inject("serial_run")

    def test_env_plan_drives_injection(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, json.dumps(
            [{"point": "cache_put", "error": "MemoryError"}]))
        with pytest.raises(MemoryError):
            maybe_inject("cache_put", key="k")

    def test_installed_plan_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, json.dumps([{"point": "cache_put"}]))
        install_faults([])  # an explicit empty plan: nothing fires
        maybe_inject("cache_put", key="k")

    def test_clear_faults_resets_everything(self):
        install_faults([FaultSpec(point="cache_put")])
        clear_faults()
        maybe_inject("cache_put", key="k")


class TestCorruptMode:
    def test_flips_last_byte_exactly_when_due(self):
        install_faults([FaultSpec(point="cache_corrupt", mode="corrupt",
                                  times=1)])
        corrupted = corrupt_payload("cache_corrupt", "k", b"abc")
        assert corrupted == b"ab" + bytes([ord("c") ^ 0xFF])
        assert corrupt_payload("cache_corrupt", "k", b"abc") == b"abc"

    def test_empty_payload_passes_through(self):
        install_faults([FaultSpec(point="p", mode="corrupt")])
        assert corrupt_payload("p", "k", b"") == b""

    def test_modes_keep_separate_counters(self):
        """A ``corrupt_payload`` call must neither fire an error-mode
        spec nor advance its ``nth`` counter, and vice versa."""
        install_faults([
            FaultSpec(point="p", mode="error", nth=2),
            FaultSpec(point="p", mode="corrupt", times=1),
        ])
        assert corrupt_payload("p", "k", b"x") != b"x"
        maybe_inject("p", key="k")  # error call 1 of nth=2: silent
        with pytest.raises(OSError):
            maybe_inject("p", key="k")  # error call 2: fires

"""Core replay and the simulation runner."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim.runner import run_simulation
from repro.trace.records import PCMAccess, READ, WRITE

from ..conftest import make_tiny_config


class TestCoreReplay:
    def make_mem_stub(self):
        """A memory stub with controllable admission."""
        class MemStub:
            def __init__(self):
                self.reads = []
                self.writes = []
                self.accept_reads = True
                self.accept_writes = True
                self.waiting = []

            def submit_read(self, core, rec, now, on_done):
                if not self.accept_reads:
                    return False
                self.reads.append((now, rec))
                on_done(now + 1000)
                return True

            def submit_write(self, core, rec, now):
                if not self.accept_writes:
                    return False
                self.writes.append((now, rec))
                return True

            def wait_for_read_slot(self, resubmit):
                self.waiting.append(resubmit)

            def wait_for_write_slot(self, resubmit):
                self.waiting.append(resubmit)

        return MemStub()

    def make_core(self, stream, mem):
        from repro.sim.cpu import Core
        from repro.sim.events import SimEngine
        engine = SimEngine()
        core = Core(0, stream, engine, mem)
        return core, engine

    def test_gap_paces_issue(self):
        mem = self.make_mem_stub()
        stream = [
            PCMAccess(0, READ, 0, gap_instr=100, gap_hit_cycles=20),
        ]
        core, engine = self.make_core(stream, mem)
        core.start()
        engine.run()
        assert mem.reads[0][0] == 120  # gap_instr + hit cycles
        assert core.finished

    def test_read_stalls_until_done(self):
        mem = self.make_mem_stub()
        stream = [
            PCMAccess(0, READ, 0, gap_instr=10, gap_hit_cycles=0),
            PCMAccess(0, READ, 256, gap_instr=10, gap_hit_cycles=0),
        ]
        core, engine = self.make_core(stream, mem)
        core.start()
        engine.run()
        # Second read issues only after the first completes (+1000).
        assert mem.reads[1][0] == 10 + 1000 + 10

    def test_write_is_posted(self):
        mem = self.make_mem_stub()
        idx = np.array([0])
        stream = [
            PCMAccess(0, WRITE, 0, gap_instr=5, gap_hit_cycles=0,
                      changed_idx=idx, iter_counts=np.array([1])),
            PCMAccess(0, READ, 256, gap_instr=5, gap_hit_cycles=0),
        ]
        core, engine = self.make_core(stream, mem)
        core.start()
        engine.run()
        # Write does not stall: the read issues gap cycles later.
        assert mem.reads[0][0] == 10

    def test_instruction_count(self):
        mem = self.make_mem_stub()
        stream = [
            PCMAccess(0, READ, 0, gap_instr=7, gap_hit_cycles=1),
            PCMAccess(0, READ, 256, gap_instr=9, gap_hit_cycles=1),
        ]
        core, _ = self.make_core(stream, mem)
        assert core.instructions == 16

    def test_empty_stream_finishes_immediately(self):
        mem = self.make_mem_stub()
        core, engine = self.make_core([], mem)
        core.start()
        engine.run()
        assert core.finished
        assert core.finish_time == 0


class TestRunner:
    def test_result_fields(self):
        config = make_tiny_config()
        result = run_simulation(
            config, "tig_m", "dimm+chip",
            n_pcm_writes=30, max_refs_per_core=8_000,
        )
        assert result.scheme == "dimm+chip"
        assert result.workload == "tig_m"
        assert result.cycles == result.stats.total_cycles
        assert result.config.cell_mapping == "naive"

    def test_scheme_config_application(self):
        config = make_tiny_config()
        result = run_simulation(
            config, "tig_m", "fpb",
            n_pcm_writes=30, max_refs_per_core=8_000,
        )
        assert result.config.cell_mapping == "bim"
        assert result.config.power.gcp_efficiency == 0.70

    def test_speedup_raises_on_bad_cpi(self):
        config = make_tiny_config()
        result = run_simulation(
            config, "tig_m", "ideal",
            n_pcm_writes=30, max_refs_per_core=8_000,
        )
        broken = type(result)(
            scheme="x", workload="y", cycles=0, cpi=0.0, stats=result.stats,
            config=config,
        )
        with pytest.raises(SimulationError):
            broken.speedup_over(result)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError):
            run_simulation(
                make_tiny_config(), "tig_m", "hyperdrive",
                n_pcm_writes=10, max_refs_per_core=2_000,
            )

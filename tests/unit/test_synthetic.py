"""Synthetic workloads and line-content models."""

import itertools

import numpy as np
import pytest

from repro.errors import TraceError
from repro.pcm.cells import changed_cells
from repro.pcm.mapping import make_mapping
from repro.rng import make_rng
from repro.trace.synthetic import (
    AstarWorkload,
    BwavesWorkload,
    McfWorkload,
    MummerWorkload,
    QsortWorkload,
    StreamCopy,
    XalancWorkload,
)
from repro.trace.synthetic.base import BatchedRandom
from repro.trace.synthetic.data import make_line_block, make_line_pair
from repro.trace.workloads import (
    ALL_WORKLOADS,
    available_workloads,
    get_workload,
)

BENCHES = [
    AstarWorkload, BwavesWorkload, McfWorkload, MummerWorkload,
    QsortWorkload, StreamCopy, XalancWorkload,
]


class TestBatchedRandom:
    def test_uniform_range(self):
        rnd = BatchedRandom(make_rng(1, "t"), size=64)
        values = [rnd.random() for _ in range(500)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_integers_range(self):
        rnd = BatchedRandom(make_rng(1, "t"))
        values = [rnd.integers(3, 9) for _ in range(500)]
        assert set(values) <= set(range(3, 9))

    def test_geometric_gap_mean(self):
        rnd = BatchedRandom(make_rng(1, "t"))
        gaps = [rnd.geometric_gap(4.0) for _ in range(20_000)]
        assert 3.5 < np.mean(gaps) < 4.5
        assert min(gaps) >= 1

    def test_gap_of_one(self):
        rnd = BatchedRandom(make_rng(1, "t"))
        assert rnd.geometric_gap(1.0) == 1


class TestWorkloadStreams:
    @pytest.mark.parametrize("bench_cls", BENCHES)
    def test_refs_in_footprint(self, bench_cls):
        bench = bench_cls()
        base = 1 << 40
        refs = itertools.islice(bench.refs(make_rng(1, "t"), base), 2000)
        for ref in refs:
            assert base <= ref.addr < base + bench.footprint_bytes
            assert ref.gap_instr >= 1
            if ref.is_write:
                assert 0 <= ref.value < 1 << 64
            else:
                assert ref.value is None

    @pytest.mark.parametrize("bench_cls", BENCHES)
    def test_deterministic(self, bench_cls):
        bench = bench_cls()

        def take():
            return [
                (r.addr, r.is_write, r.value)
                for r in itertools.islice(
                    bench.refs(make_rng(5, "t"), 0), 200
                )
            ]

        assert take() == take()

    def test_write_fractions_ordered(self):
        """tigr is read-dominated; mcf writes about half the time."""
        def write_frac(bench):
            refs = list(itertools.islice(bench.refs(make_rng(2, "t"), 0), 5000))
            return sum(r.is_write for r in refs) / len(refs)

        from repro.trace.synthetic import TigrWorkload
        assert write_frac(TigrWorkload()) < write_frac(McfWorkload())

    def test_stream_copy_is_sequential(self):
        bench = StreamCopy()
        reads = [
            r.addr for r in itertools.islice(bench.refs(make_rng(1, "t"), 0), 64)
            if not r.is_write
        ]
        assert all(b - a == 8 for a, b in zip(reads, reads[1:]))


class TestLineData:
    def test_block_shapes(self):
        rng = make_rng(1, "d")
        block = make_line_block("int", rng, 10, 256)
        assert block.shape == (10, 256)
        assert block.dtype == np.uint8

    def test_unknown_kind(self):
        with pytest.raises(TraceError):
            make_line_block("quantum", make_rng(1, "d"), 1, 256)
        with pytest.raises(TraceError):
            make_line_pair("quantum", make_rng(1, "d"), 1, 256)

    def test_pair_delta_is_partial(self):
        rng = make_rng(1, "d")
        old, new = make_line_pair("int", rng, 50, 256)
        changed = [
            changed_cells(old[i], new[i], 2).size for i in range(50)
        ]
        assert 0 < np.mean(changed) < 1024

    @pytest.mark.parametrize("kind,lo,hi", [
        ("int", 40, 300), ("fp", 150, 500), ("random", 100, 400),
    ])
    def test_pair_change_magnitudes(self, kind, lo, hi):
        rng = make_rng(2, "d")
        old, new = make_line_pair(kind, rng, 100, 256)
        mean = np.mean([
            changed_cells(old[i], new[i], 2).size for i in range(100)
        ])
        assert lo < mean < hi

    def test_int_changes_concentrate_under_vim(self):
        """Integer deltas churn low-order cells, which VIM piles onto
        the same chips (the weakness BIM fixes, Section 4.3)."""
        rng = make_rng(3, "d")
        old, new = make_line_pair("int", rng, 100, 256)
        vim = make_mapping("vim", 1024, 8)
        bim = make_mapping("bim", 1024, 8)
        vim_max = bim_max = 0.0
        for i in range(100):
            idx = changed_cells(old[i], new[i], 2)
            if idx.size:
                vim_max += vim.counts_by_chip(idx).max()
                bim_max += bim.counts_by_chip(idx).max()
        assert bim_max < vim_max

    def test_clustered_changes_concentrate_under_naive(self):
        rng = make_rng(4, "d")
        old, new = make_line_pair("random", rng, 100, 256)
        naive = make_mapping("naive", 1024, 8)
        bim = make_mapping("bim", 1024, 8)
        naive_max = bim_max = 0.0
        for i in range(100):
            idx = changed_cells(old[i], new[i], 2)
            if idx.size:
                naive_max += naive.counts_by_chip(idx).max()
                bim_max += bim.counts_by_chip(idx).max()
        assert bim_max < naive_max

    def test_empty_pair(self):
        old, new = make_line_pair("fp", make_rng(1, "d"), 0, 256)
        assert old.shape == (0, 256) and new.shape == (0, 256)


class TestWorkloadRegistry:
    def test_fourteen_workloads(self):
        assert len(available_workloads()) == 13 or len(available_workloads()) == 14

    def test_table2_targets(self):
        assert get_workload("mcf_m").table_rpki == 4.74
        assert get_workload("mum_m").table_wpki == 4.16

    def test_mixes_are_heterogeneous(self):
        spec = get_workload("mix_1")
        names = {type(b).__name__ for b in spec.instantiate()}
        assert len(names) == 4

    def test_homogeneous_eight_cores(self):
        spec = get_workload("lbm_m")
        benches = spec.instantiate()
        assert len(benches) == 8
        assert len({type(b) for b in benches}) == 1

    def test_unknown_workload(self):
        with pytest.raises(TraceError):
            get_workload("doom_m")

    def test_all_workloads_order(self):
        assert ALL_WORKLOADS[0] == "ast_m"
        assert "mix_3" in ALL_WORKLOADS

"""Supervision policy: classification, deterministic backoff, quarantine.

Pure-policy tests — no process pool. The engine's behaviour under real
crashed/hung workers lives in ``tests/integration/test_fault_tolerance``.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import pytest

from repro.errors import SimulationError, WatchdogError, WorkerTimeoutError
from repro.experiments.resilience import (
    DETERMINISTIC,
    FAIL,
    QUARANTINE,
    RETRY,
    TRANSIENT,
    RetryPolicy,
    RunSupervisor,
    backoff_delay,
    classify_failure,
    failure_signature,
)


@dataclass(frozen=True)
class FakeRequest:
    """The three fields the supervisor reads off a RunRequest."""

    fingerprint: str = "f" * 64
    workload: str = "tig_m"
    scheme: str = "fpb"


class TestClassification:
    @pytest.mark.parametrize("exc", [
        BrokenProcessPool("a worker died"),
        WorkerTimeoutError("abandoned after 30s"),
        OSError("I/O weather"),
        MemoryError(),
        EOFError(),
        TimeoutError(),
        ConnectionResetError(),
    ])
    def test_transient(self, exc):
        assert classify_failure(exc) == TRANSIENT

    @pytest.mark.parametrize("exc", [
        SimulationError("invariant violated"),
        # The simulator's livelock watchdog counts dispatches, so it
        # recurs identically: deterministic, headed for quarantine.
        WatchdogError("no forward progress"),
        ValueError("bad input"),
        ZeroDivisionError(),
    ])
    def test_deterministic(self, exc):
        assert classify_failure(exc) == DETERMINISTIC

    def test_signature_is_type_and_message(self):
        assert failure_signature(ValueError("boom")) == "ValueError: boom"
        assert (failure_signature(ValueError("boom"))
                != failure_signature(ValueError("bang")))
        assert (failure_signature(OSError("x"))
                != failure_signature(ValueError("x")))


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        RetryPolicy()

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"deterministic_attempts": 0},
        {"run_timeout_s": 0.0},
        {"run_timeout_s": -1.0},
        {"max_pool_respawns": -1},
    ])
    def test_rejects_nonsense(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBackoff:
    def test_reproducible_from_fingerprint(self):
        """The satellite claim: same fingerprint + attempt = same delay,
        across supervisor instances and runs — no clocks, no RNG."""
        policy = RetryPolicy()
        for attempt in (1, 2, 3):
            assert (backoff_delay("a" * 64, attempt, policy)
                    == backoff_delay("a" * 64, attempt, policy))

    def test_jitter_varies_across_fingerprints(self):
        policy = RetryPolicy()
        delays = {backoff_delay(f"fp{i}", 1, policy) for i in range(16)}
        assert len(delays) == 16  # hash-derived: all distinct

    def test_exponential_then_capped(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.4,
                             jitter=0.0)
        assert backoff_delay("x", 1, policy) == pytest.approx(0.1)
        assert backoff_delay("x", 2, policy) == pytest.approx(0.2)
        assert backoff_delay("x", 3, policy) == pytest.approx(0.4)
        assert backoff_delay("x", 9, policy) == pytest.approx(0.4)

    def test_jitter_bounded_by_policy_fraction(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=1.0,
                             jitter=0.5)
        for i in range(32):
            delay = backoff_delay(f"fp{i}", 1, policy)
            assert 1.0 <= delay <= 1.5

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            backoff_delay("z", 0, RetryPolicy())


class TestSupervisor:
    def test_transient_retries_until_budget_then_fails(self):
        sup = RunSupervisor(RetryPolicy(max_attempts=3))
        req = FakeRequest()
        v1, d1 = sup.on_failure(req, OSError("flaky"))
        assert (v1, d1) == (RETRY, backoff_delay(req.fingerprint, 1,
                                                 sup.policy))
        v2, d2 = sup.on_failure(req, OSError("flaky"))
        assert v2 == RETRY
        assert d2 > d1  # exponential: attempt 2's floor beats 1's ceiling
        v3, d3 = sup.on_failure(req, OSError("flaky"))
        assert (v3, d3) == (FAIL, None)
        assert sup.attempts(req.fingerprint) == 3
        assert sup.retries == 2
        [failure] = sup.failed
        assert failure.verdict == FAIL
        assert failure.failure_class == TRANSIENT
        assert failure.attempts == 3
        assert sup.quarantined == []

    def test_transient_never_quarantines_on_identical_signature(self):
        """An identical transient failure (same disk error twice) is
        environment, not a property of the run — keep retrying."""
        sup = RunSupervisor(RetryPolicy(max_attempts=4))
        req = FakeRequest()
        for _ in range(3):
            verdict, _ = sup.on_failure(req, OSError("disk full"))
            assert verdict == RETRY
        verdict, _ = sup.on_failure(req, OSError("disk full"))
        assert verdict == FAIL

    def test_deterministic_identical_twice_quarantines(self):
        sup = RunSupervisor(RetryPolicy())
        req = FakeRequest()
        v1, _ = sup.on_failure(req, ValueError("same bug"))
        assert v1 == RETRY  # one confirmation retry
        v2, d2 = sup.on_failure(req, ValueError("same bug"))
        assert (v2, d2) == (QUARANTINE, None)
        [failure] = sup.quarantined
        assert failure.failure_class == DETERMINISTIC
        assert failure.attempts == 2
        assert sup.failed == []

    def test_deterministic_distinct_signatures_fail_at_budget(self):
        """Two *different* deterministic errors are not 'the same bug
        twice' — the attempt budget decides, and the verdict is a plain
        fail, not quarantine."""
        sup = RunSupervisor(RetryPolicy(deterministic_attempts=2))
        req = FakeRequest()
        assert sup.on_failure(req, ValueError("first"))[0] == RETRY
        verdict, _ = sup.on_failure(req, ValueError("second"))
        assert verdict == FAIL
        assert sup.quarantined == []

    def test_runs_tracked_independently(self):
        sup = RunSupervisor(RetryPolicy(max_attempts=2))
        a = FakeRequest(fingerprint="a" * 64)
        b = FakeRequest(fingerprint="b" * 64, scheme="ideal")
        assert sup.on_failure(a, OSError("x"))[0] == RETRY
        assert sup.on_failure(b, OSError("x"))[0] == RETRY
        assert sup.on_failure(a, OSError("x"))[0] == FAIL
        assert sup.attempts(b.fingerprint) == 1  # b unaffected by a

    def test_terminal_failure_record_shape(self):
        """as_record() is what lands in the manifest (``run_failure``)
        and in ``execute_plan``'s summary — pin the schema."""
        sup = RunSupervisor(RetryPolicy(max_attempts=1))
        req = FakeRequest()
        verdict, _ = sup.on_failure(req, OSError("boom"))
        assert verdict == FAIL
        assert sup.failures[0].as_record() == {
            "fingerprint": req.fingerprint,
            "workload": "tig_m",
            "scheme": "fpb",
            "error": "boom",
            "error_type": "OSError",
            "failure_class": TRANSIENT,
            "attempts": 1,
            "verdict": FAIL,
        }


class TestForwardProgress:
    """Checkpoint-aware budgeting: an attempt that advanced the run's
    newest capsule resets the transient retry budget."""

    def test_advancing_progress_resets_the_budget(self):
        sup = RunSupervisor(RetryPolicy(max_attempts=2))
        req = FakeRequest()
        # Three crashes, each after more checkpointed writes than the
        # last: under a 2-attempt budget this run would normally be dead
        # at the second failure, but every attempt got further.
        for progress in (100, 200, 300):
            verdict, _ = sup.on_failure(req, OSError("crash"),
                                        progress=progress)
            assert verdict == RETRY
        assert sup.failures == []

    def test_stagnant_progress_charges_the_budget(self):
        """Crashing at the same capsule mark every time is not forward
        progress — the budget runs out exactly as without checkpoints."""
        sup = RunSupervisor(RetryPolicy(max_attempts=2))
        req = FakeRequest()
        assert sup.on_failure(req, OSError("crash"),
                              progress=100)[0] == RETRY
        verdict, _ = sup.on_failure(req, OSError("crash"), progress=100)
        assert verdict == FAIL

    def test_none_progress_is_no_checkpointing(self):
        sup = RunSupervisor(RetryPolicy(max_attempts=2))
        req = FakeRequest()
        assert sup.on_failure(req, OSError("crash"))[0] == RETRY
        assert sup.on_failure(req, OSError("crash"))[0] == FAIL

    def test_flag_off_disables_the_reset(self):
        sup = RunSupervisor(RetryPolicy(
            max_attempts=2, forward_progress_resets_budget=False))
        req = FakeRequest()
        assert sup.on_failure(req, OSError("crash"),
                              progress=100)[0] == RETRY
        verdict, _ = sup.on_failure(req, OSError("crash"), progress=200)
        assert verdict == FAIL

    def test_quarantine_unaffected_by_progress(self):
        """The identical-signature rule still benches a deterministic
        bug even when each attempt checkpoints further: the bug lives
        downstream of the capsule and will recur forever."""
        sup = RunSupervisor(RetryPolicy())
        req = FakeRequest()
        assert sup.on_failure(req, ValueError("same bug"),
                              progress=100)[0] == RETRY
        verdict, _ = sup.on_failure(req, ValueError("same bug"),
                                    progress=200)
        assert verdict == QUARANTINE

    def test_regression_is_not_progress(self):
        """A retry that resumed from an older capsule (the newest was
        corrupt) reports a lower mark — charged, not reset."""
        sup = RunSupervisor(RetryPolicy(max_attempts=2))
        req = FakeRequest()
        assert sup.on_failure(req, OSError("crash"),
                              progress=200)[0] == RETRY
        verdict, _ = sup.on_failure(req, OSError("crash"), progress=100)
        assert verdict == FAIL

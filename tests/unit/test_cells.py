"""MLC/SLC cell packing and diffing."""

import numpy as np
import pytest

from repro.errors import MappingError
from repro.pcm.cells import (
    bytes_to_levels,
    changed_cell_targets,
    changed_cells,
    levels_to_bytes,
)


class TestBytesToLevels:
    def test_mlc_single_byte(self):
        levels = bytes_to_levels(np.array([0b11100100], dtype=np.uint8), 2)
        assert levels.tolist() == [0, 1, 2, 3]

    def test_slc_single_byte(self):
        levels = bytes_to_levels(np.array([0b10000001], dtype=np.uint8), 1)
        assert levels.tolist() == [1, 0, 0, 0, 0, 0, 0, 1]

    def test_mlc_length(self):
        data = np.zeros(256, dtype=np.uint8)
        assert bytes_to_levels(data, 2).size == 1024

    def test_slc_length(self):
        data = np.zeros(256, dtype=np.uint8)
        assert bytes_to_levels(data, 1).size == 2048

    def test_zeros_map_to_level_zero(self):
        levels = bytes_to_levels(np.zeros(16, dtype=np.uint8), 2)
        assert (levels == 0).all()

    def test_unsupported_bits(self):
        with pytest.raises(MappingError):
            bytes_to_levels(np.zeros(4, dtype=np.uint8), 4)


class TestRoundtrip:
    def test_mlc_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=64, dtype=np.uint8)
        assert (levels_to_bytes(bytes_to_levels(data, 2), 2) == data).all()

    def test_slc_roundtrip(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, size=64, dtype=np.uint8)
        assert (levels_to_bytes(bytes_to_levels(data, 1), 1) == data).all()

    def test_bad_level_count(self):
        with pytest.raises(MappingError):
            levels_to_bytes(np.zeros(3, dtype=np.uint8), 2)


class TestChangedCells:
    def test_identical_lines(self):
        data = np.arange(64, dtype=np.uint8)
        assert changed_cells(data, data.copy(), 2).size == 0

    def test_single_cell_change(self):
        old = np.zeros(64, dtype=np.uint8)
        new = old.copy()
        new[0] = 0b00000010  # cell 0: level 0 -> 2
        idx = changed_cells(old, new, 2)
        assert idx.tolist() == [0]

    def test_byte_change_touches_up_to_four_cells(self):
        old = np.zeros(64, dtype=np.uint8)
        new = old.copy()
        new[3] = 0xFF
        idx = changed_cells(old, new, 2)
        assert idx.tolist() == [12, 13, 14, 15]

    def test_mlc_fewer_changes_than_slc(self):
        """Figure 2's claim: a 2-bit change inside one cell is one MLC
        cell change but up to two SLC bit flips."""
        rng = np.random.default_rng(2)
        old = rng.integers(0, 256, size=256, dtype=np.uint8)
        new = rng.integers(0, 256, size=256, dtype=np.uint8)
        mlc = changed_cells(old, new, 2).size
        slc = changed_cells(old, new, 1).size
        assert mlc < slc

    def test_size_mismatch(self):
        with pytest.raises(MappingError):
            changed_cells(
                np.zeros(64, dtype=np.uint8), np.zeros(32, dtype=np.uint8), 2
            )

    def test_targets_align_with_indices(self):
        old = np.zeros(8, dtype=np.uint8)
        new = np.zeros(8, dtype=np.uint8)
        new[0] = 0b0111  # cell0 -> 3, cell1 -> 1
        idx, targets = changed_cell_targets(old, new, 2)
        assert idx.tolist() == [0, 1]
        assert targets.tolist() == [3, 1]

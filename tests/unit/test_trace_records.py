"""Trace records and statistics."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.records import PCMAccess, READ, Trace, TraceStats, WRITE


def read_rec(core=0, addr=0, gap=10):
    return PCMAccess(core=core, kind=READ, line_addr=addr,
                     gap_instr=gap, gap_hit_cycles=5)


def write_rec(core=0, addr=0, gap=10, n=4):
    return PCMAccess(
        core=core, kind=WRITE, line_addr=addr, gap_instr=gap,
        gap_hit_cycles=5, changed_idx=np.arange(n),
        iter_counts=np.full(n, 2, dtype=np.uint8), slc_bit_changes=2 * n,
    )


class TestPCMAccess:
    def test_bad_kind_rejected(self):
        with pytest.raises(TraceError):
            PCMAccess(0, "X", 0, 1, 0)

    def test_write_requires_changed_idx(self):
        with pytest.raises(TraceError):
            PCMAccess(0, WRITE, 0, 1, 0)

    def test_n_cells(self):
        assert write_rec(n=7).n_cells_changed == 7
        assert read_rec().n_cells_changed == 0


class TestTraceStats:
    def test_pki(self):
        stats = TraceStats(instructions=2000, reads=4, writes=2)
        assert stats.rpki == 2.0
        assert stats.wpki == 1.0

    def test_mean_changes(self):
        stats = TraceStats(writes=2, total_cells_changed=20,
                           total_slc_bit_changes=30)
        assert stats.mean_cells_changed == 10.0
        assert stats.mean_slc_bit_changes == 15.0

    def test_empty_safe(self):
        stats = TraceStats()
        assert stats.rpki == 0.0
        assert stats.mean_cells_changed == 0.0


class TestTraceValidation:
    def test_valid(self):
        trace = Trace("t", 256, per_core=[[read_rec(0, 512)], [write_rec(1, 256)]])
        trace.validate()

    def test_core_mismatch(self):
        trace = Trace("t", 256, per_core=[[read_rec(core=1)]])
        with pytest.raises(TraceError):
            trace.validate()

    def test_unaligned_address(self):
        trace = Trace("t", 256, per_core=[[read_rec(0, 100)]])
        with pytest.raises(TraceError):
            trace.validate()

    def test_summary(self):
        trace = Trace("t", 256)
        trace.stats = TraceStats(instructions=1000, reads=3, writes=1)
        summary = trace.summary()
        assert summary["rpki"] == 3.0
        assert trace.n_accesses == 0


class TestTraceUtilities:
    def test_bank_histogram(self):
        trace = Trace("t", 256, per_core=[
            [read_rec(0, 0), read_rec(0, 256), read_rec(0, 256 * 9)],
        ])
        hist = trace.bank_histogram(8)
        assert hist[0] == 1
        assert hist[1] == 2  # lines 1 and 9 share bank 1
        assert sum(hist) == 3

    def test_per_core_summary(self):
        trace = Trace("t", 256, per_core=[
            [read_rec(0, 0), write_rec(0, 256)],
            [read_rec(1, 512)],
        ])
        summary = trace.per_core_summary()
        assert summary[0]["reads"] == 1
        assert summary[0]["writes"] == 1
        assert summary[1]["reads"] == 1
        assert summary[1]["instructions"] == 10

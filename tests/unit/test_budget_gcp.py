"""Budget equations (Eqs. 4-6) and the global charge pump runtime."""

import pytest

from repro.config.system import PowerConfig
from repro.errors import TokenError
from repro.power.budget import (
    borrow_needed_for_output,
    dimm_budget_identity,
    gcp_tokens_from_borrow,
    lcp_tokens_per_chip,
)
from repro.power.gcp import GlobalChargePump


class TestEquations:
    def test_eq4_baseline(self):
        """PT_LCP = 560 * 0.95 / 8 = 66.5."""
        power = PowerConfig()
        assert lcp_tokens_per_chip(power, 8) == pytest.approx(66.5)

    def test_eq5_conversion(self):
        """PT_GCP = sum(borrowed_i / E_LCP) * E_GCP."""
        out = gcp_tokens_from_borrow([9.5] * 8, 0.95, 0.70)
        assert out == pytest.approx(9.5 * 8 / 0.95 * 0.70)

    def test_eq5_inverse(self):
        borrowed = borrow_needed_for_output(56.0, 0.95, 0.70)
        assert gcp_tokens_from_borrow([borrowed], 0.95, 0.70) == pytest.approx(56.0)

    def test_eq6_identity_holds_for_any_borrow(self):
        """The DIMM input budget is invariant under borrowing (Eq. 6)."""
        lcp = 66.5
        no_borrow = dimm_budget_identity(lcp, [0.0] * 8, 0.95, 0.70)
        some = dimm_budget_identity(lcp, [5.0, 10.0] + [0.0] * 6, 0.95, 0.70)
        heavy = dimm_budget_identity(lcp, [60.0] * 8, 0.95, 0.70)
        assert no_borrow == pytest.approx(560.0)
        assert some == pytest.approx(no_borrow)
        assert heavy == pytest.approx(no_borrow)

    def test_equal_efficiency_borrowing_is_free(self):
        """Section 6.1.1: at E_LCP = E_GCP borrowed tokens convert 1:1."""
        assert gcp_tokens_from_borrow([10.0], 0.95, 0.95) == pytest.approx(10.0)


class TestGlobalChargePump:
    def make(self, efficiency=0.70, cap=49.0):
        return GlobalChargePump(
            lcp_efficiency=0.95, gcp_efficiency=efficiency,
            max_output_tokens=cap,
        )

    def test_input_power_conversion(self):
        gcp = self.make(efficiency=0.5)
        assert gcp.input_power(10.0) == pytest.approx(20.0)

    def test_lcp_equivalent_cost(self):
        """At 50% efficiency a GCP token costs 1.9 LCP tokens of input."""
        gcp = self.make(efficiency=0.5)
        assert gcp.lcp_equivalent_cost(1.0) == pytest.approx(1.9)

    def test_pump_capacity_enforced(self):
        gcp = self.make(cap=40.0)
        gcp.acquire(30.0)
        assert not gcp.can_supply(20.0)
        with pytest.raises(TokenError):
            gcp.acquire(20.0)

    def test_acquire_release_cycle(self):
        gcp = self.make(cap=40.0)
        grant = gcp.acquire(30.0)
        gcp.release(grant)
        assert gcp.output_in_use == 0.0
        assert gcp.can_supply(40.0)

    def test_shrink(self):
        gcp = self.make(cap=40.0)
        grant = gcp.acquire(30.0)
        gcp.shrink(grant, 10.0)
        assert gcp.output_in_use == pytest.approx(10.0)
        assert gcp.can_supply(30.0)

    def test_shrink_cannot_grow(self):
        gcp = self.make(cap=40.0)
        grant = gcp.acquire(10.0)
        with pytest.raises(TokenError):
            gcp.shrink(grant, 20.0)

    def test_double_release_rejected(self):
        gcp = self.make()
        grant = gcp.acquire(5.0)
        gcp.release(grant)
        with pytest.raises(TokenError):
            gcp.release(grant)

    def test_peak_and_totals_tracked(self):
        gcp = self.make(cap=49.0)
        a = gcp.acquire(20.0)
        gcp.acquire(15.0)
        gcp.release(a)
        assert gcp.peak_output == pytest.approx(35.0)
        assert gcp.total_acquired == pytest.approx(35.0)
        assert gcp.acquire_count == 2
        assert gcp.mean_tokens_per_acquire() == pytest.approx(17.5)

    def test_zero_request_is_free(self):
        gcp = self.make(cap=0.0)
        assert gcp.can_supply(0.0)

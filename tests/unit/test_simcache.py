"""On-disk result cache: integrity checking and invalidation.

Every failure mode an entry can have — truncation, bit-rot, a payload
stored under the wrong key, a schema-version bump, garbage bytes — must
be detected on load and turn into a miss (with the bad file deleted),
never a blindly-deserialized result.
"""

import pickle

import pytest

from repro.sim import simcache
from repro.sim.runner import SimResult
from repro.sim.simcache import SIM_SCHEMA_VERSION, SimCache, run_fingerprint
from repro.sim.stats import SimStats

from ..conftest import make_tiny_config


def make_result(scheme: str = "fpb", cycles: int = 1000) -> SimResult:
    return SimResult(
        scheme=scheme,
        workload="tig_m",
        cycles=cycles,
        cpi=float(cycles) / 500.0,
        stats=SimStats(reads_done=5, writes_done=7),
        config=make_tiny_config(),
    )


def make_key(config, scheme: str = "fpb") -> str:
    return run_fingerprint(config, "tig_m", scheme,
                           n_pcm_writes=30, max_refs_per_core=8_000)


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        cache = SimCache(tmp_path / "cache")
        key = make_key(make_tiny_config())
        assert cache.get(key) is None
        cache.put(key, make_result())
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.scheme == "fpb"
        assert loaded.cycles == 1000
        assert loaded.stats.writes_done == 7
        assert loaded.config == make_tiny_config()
        assert cache.snapshot() == {
            "root": str(tmp_path / "cache"),
            "hits": 1, "misses": 1, "corrupt": 0, "stores": 1,
            "store_errors": 0,
        }

    def test_contains_and_len(self, tmp_path):
        cache = SimCache(tmp_path)
        key = make_key(make_tiny_config())
        assert key not in cache and len(cache) == 0
        cache.put(key, make_result())
        assert key in cache and len(cache) == 1

    def test_no_tempfile_leftovers(self, tmp_path):
        cache = SimCache(tmp_path)
        cache.put(make_key(make_tiny_config()), make_result())
        assert not list(tmp_path.glob("**/*.tmp"))

    def test_distinct_keys_distinct_entries(self, tmp_path):
        cache = SimCache(tmp_path)
        config = make_tiny_config()
        cache.put(make_key(config, "fpb"), make_result("fpb"))
        cache.put(make_key(config, "ideal"), make_result("ideal"))
        assert cache.get(make_key(config, "fpb")).scheme == "fpb"
        assert cache.get(make_key(config, "ideal")).scheme == "ideal"


class TestIntegrity:
    def store_one(self, tmp_path):
        cache = SimCache(tmp_path)
        key = make_key(make_tiny_config())
        cache.put(key, make_result())
        return cache, key, cache.path_for(key)

    def check_rejected(self, cache, key, path):
        """The entry must read back as a miss and be deleted."""
        assert cache.get(key) is None
        assert cache.corrupt == 1
        assert not path.exists()

    def test_truncated_entry(self, tmp_path):
        cache, key, path = self.store_one(tmp_path)
        path.write_bytes(path.read_bytes()[:40])
        self.check_rejected(cache, key, path)

    def test_truncated_below_digest_size(self, tmp_path):
        cache, key, path = self.store_one(tmp_path)
        path.write_bytes(b"\x00" * 8)
        self.check_rejected(cache, key, path)

    def test_flipped_payload_byte(self, tmp_path):
        cache, key, path = self.store_one(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        self.check_rejected(cache, key, path)

    def test_garbage_file(self, tmp_path):
        cache, key, path = self.store_one(tmp_path)
        path.write_bytes(b"not a cache entry at all, but long enough " * 4)
        self.check_rejected(cache, key, path)

    def test_entry_stored_under_wrong_key(self, tmp_path):
        """A valid entry copied to another key's path must not alias."""
        cache, key, path = self.store_one(tmp_path)
        other = make_key(make_tiny_config(), "ideal")
        other_path = cache.path_for(other)
        other_path.parent.mkdir(parents=True, exist_ok=True)
        other_path.write_bytes(path.read_bytes())
        assert cache.get(other) is None
        assert not other_path.exists()
        # the original is untouched
        assert cache.get(key) is not None

    def test_schema_version_bump_invalidates(self, tmp_path, monkeypatch):
        cache, key, path = self.store_one(tmp_path)
        monkeypatch.setattr(simcache, "SIM_SCHEMA_VERSION",
                            SIM_SCHEMA_VERSION + 1)
        self.check_rejected(cache, key, path)

    def test_valid_digest_wrong_structure(self, tmp_path):
        """A well-checksummed file whose payload is not our record dict."""
        cache, key, path = self.store_one(tmp_path)
        payload = pickle.dumps(["unexpected", "structure"])
        import hashlib
        path.write_bytes(hashlib.sha256(payload).digest() + payload)
        self.check_rejected(cache, key, path)

    def test_recompute_after_corruption_restores_entry(self, tmp_path):
        cache, key, path = self.store_one(tmp_path)
        path.write_bytes(b"junk")
        assert cache.get(key) is None
        cache.put(key, make_result(cycles=1000))
        assert cache.get(key).cycles == 1000


class TestContainsVerifies:
    """``key in cache`` verifies the payload digest, so membership and
    ``get()`` agree for truncated/bit-rotten/garbage entries — a planner
    probing membership never counts an unloadable entry as present."""

    def store_one(self, tmp_path):
        cache = SimCache(tmp_path)
        key = make_key(make_tiny_config())
        cache.put(key, make_result())
        return cache, key, cache.path_for(key)

    def test_flipped_byte_not_contained(self, tmp_path):
        cache, key, path = self.store_one(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert key not in cache
        assert cache.get(key) is None  # membership and get() agree

    def test_truncated_entry_not_contained(self, tmp_path):
        cache, key, path = self.store_one(tmp_path)
        path.write_bytes(path.read_bytes()[:40])
        assert key not in cache

    def test_below_digest_size_not_contained(self, tmp_path):
        cache, key, path = self.store_one(tmp_path)
        path.write_bytes(b"\x00" * 8)
        assert key not in cache

    def test_membership_probe_is_read_only(self, tmp_path):
        """Unlike get(), __contains__ neither deletes the bad entry nor
        moves any counter — it answers a question, nothing more."""
        cache, key, path = self.store_one(tmp_path)
        path.write_bytes(b"garbage that is long enough to check " * 2)
        before = cache.snapshot()
        assert key not in cache
        assert path.exists()
        assert cache.snapshot() == before


class TestBestEffortStores:
    """``put()`` is an accelerator, not a correctness dependency: an
    OSError is swallowed, counted, and the caller keeps its result."""

    def test_oserror_counted_not_raised(self, tmp_path):
        from repro.testing.faults import (
            FaultSpec, clear_faults, install_faults,
        )
        cache = SimCache(tmp_path)
        key = make_key(make_tiny_config())
        install_faults([FaultSpec(point="cache_put", error="OSError",
                                  times=1)])
        try:
            assert cache.put(key, make_result()) is False
        finally:
            clear_faults()
        assert cache.store_errors == 1
        assert cache.stores == 0
        assert key not in cache
        assert not list(tmp_path.glob("**/*.tmp"))
        # the disk recovered: the next store goes through
        assert cache.put(key, make_result()) is True
        assert cache.get(key) is not None
        assert cache.snapshot()["store_errors"] == 1

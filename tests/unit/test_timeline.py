"""Simulation timeline recorder."""

import numpy as np
import pytest

from repro.core.policies.registry import get_scheme
from repro.pcm.dimm import DIMM
from repro.sim.cpu import Core
from repro.sim.debug import Timeline
from repro.sim.events import SimEngine
from repro.sim.memory_system import MemorySystem
from repro.sim.stats import SimStats
from repro.trace.records import PCMAccess, READ, WRITE

from ..conftest import make_tiny_config


def run_with_timeline(streams, scheme="dimm+chip", capacity=None):
    config = make_tiny_config()
    spec = get_scheme(scheme)
    cfg = spec.apply_to_config(config)
    engine = SimEngine()
    stats = SimStats()
    dimm = DIMM(cfg)
    mem = MemorySystem(cfg, dimm, spec.build_manager(cfg, dimm), engine, stats)
    timeline = Timeline(capacity=capacity).attach(mem)
    cores = [Core(i, s, engine, mem) for i, s in enumerate(streams)]
    for core in cores:
        core.start()
    end = engine.run()
    mem.finalize(end)
    return timeline, stats


def write_rec(addr, n=30, gap=100):
    idx = np.unique(np.linspace(0, 1023, n).astype(np.int64))
    return PCMAccess(core=0, kind=WRITE, line_addr=addr, gap_instr=gap,
                     gap_hit_cycles=0, changed_idx=idx,
                     iter_counts=np.full(idx.size, 2, dtype=np.uint8))


def read_rec(addr, gap=100, core=1):
    return PCMAccess(core=core, kind=READ, line_addr=addr,
                     gap_instr=gap, gap_hit_cycles=0)


class TestTimeline:
    def test_records_issue_and_completion(self):
        timeline, stats = run_with_timeline([[write_rec(0)], []])
        counts = timeline.counts()
        assert counts["write_issue"] == 1
        assert counts["write_round_done"] == 1
        assert counts["iteration_end"] == 2  # RESET + 1 SET

    def test_reads_recorded(self):
        timeline, _ = run_with_timeline([[], [read_rec(0, core=1)]])
        assert len(timeline.of_kind("read_issue")) == 1

    def test_event_ordering(self):
        timeline, _ = run_with_timeline([[write_rec(0)], []])
        issue = timeline.of_kind("write_issue")[0]
        done = timeline.of_kind("write_round_done")[0]
        assert issue.time < done.time

    def test_detail_fields(self):
        timeline, _ = run_with_timeline([[write_rec(0, n=25)], []])
        issue = timeline.of_kind("write_issue")[0]
        assert issue.detail["bank"] == 0
        assert issue.detail["cells"] == 25

    def test_capacity_cap(self):
        streams = [[write_rec(k * 256) for k in range(8)], []]
        timeline, _ = run_with_timeline(streams, capacity=5)
        assert len(timeline) == 5

    def test_dump_renders(self):
        timeline, _ = run_with_timeline([[write_rec(0)], []])
        text = timeline.dump(limit=2)
        assert "write_issue" in text
        assert "more" in text or len(timeline) <= 2

    def test_double_attach_rejected(self):
        timeline, _ = run_with_timeline([[write_rec(0)], []])
        with pytest.raises(RuntimeError):
            timeline.attach(object())  # type: ignore[arg-type]

    def test_behaviour_unchanged(self):
        """Attaching a timeline must not perturb results."""
        _, with_t = run_with_timeline([[write_rec(0), write_rec(512)], []])
        # Reference run without timeline.
        config = make_tiny_config()
        spec = get_scheme("dimm+chip")
        cfg = spec.apply_to_config(config)
        engine = SimEngine()
        stats = SimStats()
        dimm = DIMM(cfg)
        mem = MemorySystem(cfg, dimm, spec.build_manager(cfg, dimm),
                           engine, stats)
        cores = [Core(0, [write_rec(0), write_rec(512)], engine, mem),
                 Core(1, [], engine, mem)]
        for core in cores:
            core.start()
        end = engine.run()
        mem.finalize(end)
        assert stats.writes_done == with_t.writes_done
        assert stats.total_cycles == with_t.total_cycles


class TestDetach:
    def _fresh_mem(self, scheme="dimm+chip"):
        config = make_tiny_config()
        spec = get_scheme(scheme)
        cfg = spec.apply_to_config(config)
        engine = SimEngine()
        stats = SimStats()
        dimm = DIMM(cfg)
        mem = MemorySystem(cfg, dimm, spec.build_manager(cfg, dimm),
                           engine, stats)
        return mem, engine, stats

    def test_detach_restores_wrapped_methods(self):
        mem, _, _ = self._fresh_mem()
        originals = {
            name: getattr(mem, name)
            for name, _, _ in Timeline._HOOKS
        }
        timeline = Timeline().attach(mem)
        for name in originals:
            assert getattr(mem, name) is not originals[name]
        timeline.detach()
        for name, method in originals.items():
            assert getattr(mem, name) == method
        assert mem._update_burst == originals.get(
            "_update_burst", mem._update_burst)
        # No lingering instance-level overrides.
        for name, _, _ in Timeline._HOOKS:
            assert name not in vars(mem)
        assert "_update_burst" not in vars(mem)

    def test_detach_keeps_events_and_allows_reattach(self):
        timeline, _ = run_with_timeline([[write_rec(0)], []])
        n_events = len(timeline)
        timeline.detach()
        assert len(timeline) == n_events
        mem, _, _ = self._fresh_mem()
        timeline.attach(mem)  # reusable after detach
        timeline.detach()

    def test_detach_without_attach_rejected(self):
        with pytest.raises(RuntimeError):
            Timeline().detach()

    def test_detached_system_records_nothing_further(self):
        mem, engine, stats = self._fresh_mem()
        timeline = Timeline().attach(mem)
        timeline.detach()
        cores = [Core(0, [write_rec(0)], engine, mem),
                 Core(1, [], engine, mem)]
        for core in cores:
            core.start()
        mem.finalize(engine.run())
        assert stats.writes_done == 1
        assert len(timeline) == 0


class TestDroppedCounter:
    def test_dropped_counts_past_capacity(self):
        streams = [[write_rec(k * 256) for k in range(8)], []]
        capped, _ = run_with_timeline(streams, capacity=5)
        uncapped, _ = run_with_timeline(streams)
        assert len(capped) == 5
        assert capped.dropped == len(uncapped) - 5
        assert uncapped.dropped == 0

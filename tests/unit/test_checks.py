"""Shape-check dispatch and logic."""

from repro.experiments.base import ExperimentResult
from repro.experiments.checks import check_result, has_check


def make_result(exp_id, rows, columns=None):
    columns = columns or (["workload"] + [
        k for k in rows[0] if k != "workload"
    ])
    return ExperimentResult(exp_id, "t", columns, rows)


class TestDispatch:
    def test_known_checks(self):
        assert has_check("fig4")
        assert has_check("fig16")
        assert not has_check("tab1")

    def test_unknown_exp_returns_empty(self):
        result = make_result("tab1", [{"workload": "gmean", "x": 1.0}])
        assert check_result(result) == []

    def test_malformed_result_reported(self):
        result = make_result("fig4", [{"workload": "w1"}])  # no gmean row
        issues = check_result(result)
        assert issues and "check failed" in issues[0]


class TestFig4Check:
    GOOD = {
        "workload": "gmean", "ideal": 1.0, "dimm-only": 0.68,
        "dimm+chip": 0.38, "pwl": 0.39, "1.5xlocal": 0.56,
        "2xlocal": 0.66, "sche24": 0.45, "sche48": 0.5, "sche96": 0.55,
    }

    def test_paper_shape_passes(self):
        assert check_result(make_result("fig4", [self.GOOD])) == []

    def test_inverted_ordering_caught(self):
        bad = dict(self.GOOD, **{"dimm+chip": 0.9})
        issues = check_result(make_result("fig4", [bad]))
        assert issues


class TestFig11Check:
    def test_monotone_passes(self):
        row = {"workload": "gmean", "dimm-only": 1.8, "gcp-ne-0.95": 1.3,
               "gcp-ne-0.7": 1.2, "gcp-ne-0.5": 1.1}
        assert check_result(make_result("fig11", [row])) == []

    def test_non_monotone_caught(self):
        row = {"workload": "gmean", "dimm-only": 1.8, "gcp-ne-0.95": 1.0,
               "gcp-ne-0.7": 1.3, "gcp-ne-0.5": 1.1}
        assert check_result(make_result("fig11", [row]))


class TestFig16Check:
    def test_near_ideal_passes(self):
        row = {"workload": "gmean", "gcp-bim-0.7": 1.7, "ipm": 2.4,
               "ipm+mr": 2.5, "ideal": 2.6}
        assert check_result(make_result("fig16", [row])) == []

    def test_regression_caught(self):
        row = {"workload": "gmean", "gcp-bim-0.7": 1.7, "ipm": 1.5,
               "ipm+mr": 1.4, "ideal": 2.6}
        assert check_result(make_result("fig16", [row]))


class TestSweepChecks:
    def test_fig19_monotone(self):
        row = {"workload": "gmean", "64B": 1.3, "128B": 1.5, "256B": 1.7}
        assert check_result(make_result("fig19", [row])) == []
        bad = {"workload": "gmean", "64B": 1.7, "128B": 1.5, "256B": 1.3}
        assert check_result(make_result("fig19", [bad]))

    def test_fig20_drop_at_128m(self):
        row = {"workload": "gmean", "8M": 1.4, "16M": 1.6, "32M": 1.75,
               "128M": 1.2}
        assert check_result(make_result("fig20", [row])) == []

    def test_fig22_tight_budget(self):
        row = {"workload": "gmean", "466": 1.9, "532": 1.8, "598": 1.7}
        assert check_result(make_result("fig22", [row])) == []


class TestFig21Check:
    def test_consistent_band_passes(self):
        row = {"workload": "gmean", "24": 1.8, "48": 1.85, "96": 1.88}
        assert check_result(make_result("fig21", [row])) == []

    def test_losing_at_24_caught(self):
        row = {"workload": "gmean", "24": 0.9, "48": 1.85, "96": 1.88}
        assert check_result(make_result("fig21", [row]))

"""Trace generation: calibration, caching, prewarm."""

import numpy as np
import pytest

from repro.trace.generator import clear_trace_cache, generate_trace
from repro.trace.records import READ, WRITE

from ..conftest import make_tiny_config


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_trace_cache()
    yield
    clear_trace_cache()


def tiny_trace(workload="mcf_m", **kwargs):
    config = make_tiny_config()
    kwargs.setdefault("n_pcm_writes", 60)
    kwargs.setdefault("max_refs_per_core", 15_000)
    return generate_trace(config, workload, **kwargs)


class TestGeneration:
    def test_structure_valid(self):
        trace = tiny_trace()
        trace.validate()
        assert trace.n_cores == 2

    def test_reaches_write_target(self):
        trace = tiny_trace()
        assert trace.stats.writes >= 50

    def test_writes_have_device_data(self):
        trace = tiny_trace()
        for stream in trace.per_core:
            for acc in stream:
                if acc.kind == WRITE:
                    assert acc.changed_idx is not None
                    assert acc.iter_counts is not None
                    assert acc.iter_counts.size == acc.changed_idx.size
                    if acc.iter_counts.size:
                        assert acc.iter_counts.min() >= 1

    def test_line_alignment(self):
        trace = tiny_trace()
        for stream in trace.per_core:
            for acc in stream:
                assert acc.line_addr % 256 == 0

    def test_reads_and_writes_present(self):
        trace = tiny_trace()
        kinds = {
            acc.kind for stream in trace.per_core for acc in stream
        }
        assert kinds == {READ, WRITE}

    def test_deterministic_for_seed(self):
        a = tiny_trace(use_cache=False)
        b = tiny_trace(use_cache=False)
        assert a.stats.instructions == b.stats.instructions
        assert a.stats.reads == b.stats.reads
        first_a = a.per_core[0][0]
        first_b = b.per_core[0][0]
        assert first_a.line_addr == first_b.line_addr

    def test_seed_changes_trace(self):
        a = tiny_trace(seed=1, use_cache=False)
        b = tiny_trace(seed=2, use_cache=False)
        assert a.stats.instructions != b.stats.instructions

    def test_cache_returns_same_object(self):
        a = tiny_trace()
        b = tiny_trace()
        assert a is b

    def test_cache_key_includes_workload(self):
        a = tiny_trace("mcf_m")
        b = tiny_trace("tig_m")
        assert a is not b


class TestCalibration:
    def test_wpki_tracks_table_ratio(self):
        """W/R at the PCM level should land near the Table 2 ratio."""
        trace = tiny_trace("mcf_m", n_pcm_writes=120, max_refs_per_core=30_000)
        ratio = trace.stats.writes / max(1, trace.stats.reads)
        assert 0.2 < ratio < 0.9  # table: 2.29/4.74 = 0.48

    def test_read_dominated_workload(self):
        trace = tiny_trace("tig_m", n_pcm_writes=120, max_refs_per_core=30_000)
        assert trace.stats.reads > 2 * trace.stats.writes

    def test_prewarm_disabled_changes_behaviour(self):
        warm = tiny_trace(use_cache=False, prewarm=True)
        cold = tiny_trace(use_cache=False, prewarm=False)
        # Without prewarm, the tiny window produces far fewer writes.
        assert cold.stats.writes <= warm.stats.writes


class TestCellChangeContent:
    def test_changed_idx_within_line(self):
        trace = tiny_trace()
        for stream in trace.per_core:
            for acc in stream:
                if acc.kind == WRITE and acc.changed_idx.size:
                    assert acc.changed_idx.min() >= 0
                    assert acc.changed_idx.max() < 1024

    def test_slc_changes_exceed_mlc(self):
        trace = tiny_trace()
        assert (
            trace.stats.mean_slc_bit_changes
            >= trace.stats.mean_cells_changed
        )

    def test_iteration_counts_bounded(self):
        trace = tiny_trace()
        all_iters = np.concatenate([
            acc.iter_counts
            for stream in trace.per_core for acc in stream
            if acc.kind == WRITE and acc.iter_counts.size
        ])
        assert all_iters.max() <= 16

"""Experiment framework plumbing."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.base import (
    DEFAULT,
    FULL,
    QUICK,
    ExperimentResult,
    RunScale,
    SCALES,
    gmean_of_column,
    sim,
    speedup_rows,
)

from ..conftest import make_tiny_config

MICRO = RunScale("micro", 30, 8_000, ("tig_m",))


@pytest.fixture(autouse=True)
def clean_state(isolated_run_state):
    yield


class TestScales:
    def test_registry(self):
        assert set(SCALES) == {"quick", "default", "full"}

    def test_ordering(self):
        assert QUICK.n_pcm_writes < DEFAULT.n_pcm_writes < FULL.n_pcm_writes

    def test_quick_is_subset(self):
        assert set(QUICK.workloads) <= set(DEFAULT.workloads)


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            "figx", "title", ["workload", "a"],
            [{"workload": "w1", "a": 1.5}, {"workload": "gmean", "a": 2.0}],
            paper_claim="claim", notes="note",
        )

    def test_to_table_contains_everything(self):
        text = self.make().to_table()
        assert "figx" in text and "claim" in text and "note" in text
        assert "1.500" in text

    def test_column(self):
        assert self.make().column("a") == [1.5, 2.0]

    def test_row_by(self):
        assert self.make().row_by("workload", "gmean")["a"] == 2.0

    def test_row_by_missing(self):
        with pytest.raises(ExperimentError):
            self.make().row_by("workload", "nope")

    def test_gmean_of_column_skips_summary(self):
        rows = [
            {"workload": "w1", "a": 2.0},
            {"workload": "w2", "a": 8.0},
            {"workload": "gmean", "a": 99.0},
        ]
        assert gmean_of_column(rows, "a") == pytest.approx(4.0)


class TestSimCache:
    def test_memoized(self):
        config = make_tiny_config()
        a = sim(config, "tig_m", "ideal", MICRO)
        b = sim(config, "tig_m", "ideal", MICRO)
        assert a is b

    def test_distinct_schemes_not_shared(self):
        config = make_tiny_config()
        a = sim(config, "tig_m", "ideal", MICRO)
        b = sim(config, "tig_m", "dimm+chip", MICRO)
        assert a is not b

    def test_config_knobs_in_key(self):
        config = make_tiny_config()
        a = sim(config, "tig_m", "fpb", MICRO)
        b = sim(config.with_dimm_tokens(466), "tig_m", "fpb", MICRO)
        assert a is not b

    def test_previously_unkeyed_field_not_shared(self):
        """Regression: the old hand-written key omitted
        ``power.lcp_efficiency`` (among others), so an efficiency sweep
        silently reused the first run's result."""
        from dataclasses import replace

        config = make_tiny_config()
        lowered = replace(
            config, power=replace(config.power, lcp_efficiency=0.80),
        )
        a = sim(config, "tig_m", "fpb", MICRO)
        b = sim(lowered, "tig_m", "fpb", MICRO)
        assert a is not b


class TestSpeedupRows:
    def test_shape_and_gmean(self):
        config = make_tiny_config()
        rows = speedup_rows(
            config, MICRO, ["ideal", "dimm+chip"], baseline="dimm+chip",
        )
        assert rows[-1]["workload"] == "gmean"
        assert rows[0]["dimm+chip"] == pytest.approx(1.0)
        assert len(rows) == len(MICRO.workloads) + 1

    def test_throughput_metric(self):
        config = make_tiny_config()
        rows = speedup_rows(
            config, MICRO, ["ideal"], baseline="dimm+chip",
            metric="throughput",
        )
        assert rows[0]["ideal"] > 0

    def test_unknown_metric(self):
        with pytest.raises(ExperimentError):
            speedup_rows(
                make_tiny_config(), MICRO, ["ideal"], baseline="ideal",
                metric="vibes",
            )


class TestCLIParser:
    def test_run_args(self):
        from repro.experiments.cli import build_parser
        args = build_parser().parse_args(
            ["run", "fig4", "--scale", "quick", "--seed", "7", "--bars"]
        )
        assert args.experiment == ["fig4"]
        assert args.scale == "quick"
        assert args.seed == 7
        assert args.bars

    def test_run_many_experiments(self):
        from repro.experiments.cli import build_parser
        args = build_parser().parse_args(
            ["run", "fig11", "fig12", "fig13", "fig14", "--jobs", "4"]
        )
        assert args.experiment == ["fig11", "fig12", "fig13", "fig14"]
        assert args.jobs == 4

    def test_cache_flags(self):
        from repro.experiments.cli import build_parser
        args = build_parser().parse_args(
            ["run", "fig16", "--cache-dir", "/tmp/sc", "--no-cache"]
        )
        assert str(args.cache_dir) == "/tmp/sc"
        assert args.no_cache
        assert args.jobs == 1  # serial by default

    def test_jobs_zero_means_cpu_count(self):
        import os
        from repro.experiments.cli import build_parser
        args = build_parser().parse_args(["run", "fig16", "--jobs", "0"])
        assert args.jobs == (os.cpu_count() or 1)

    def test_negative_jobs_rejected(self):
        from repro.experiments.cli import build_parser
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig16", "--jobs", "-2"])

    def test_list_command(self):
        from repro.experiments.cli import build_parser
        args = build_parser().parse_args(["list"])
        assert args.command == "list"


class TestCSVExport:
    def test_to_csv(self):
        result = ExperimentResult(
            "figx", "t", ["workload", "a"],
            [{"workload": "w1", "a": 1.5}],
        )
        csv_text = result.to_csv()
        assert csv_text.splitlines()[0] == "workload,a"
        assert "w1,1.5" in csv_text

    def test_to_csv_ignores_extras(self):
        result = ExperimentResult(
            "figx", "t", ["workload"],
            [{"workload": "w1", "hidden": 9}],
        )
        assert "hidden" not in result.to_csv()

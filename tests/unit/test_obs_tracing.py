"""Span tracing: deterministic ids, nesting, propagation, export."""

import pytest

from repro.obs.perfetto import TraceBuilder
from repro.obs.tracing import (
    SPAN_PID_OFFSET,
    SpanContext,
    Tracer,
    activate,
    current_context,
    current_trace_id,
    span_id_for,
    trace_id_for,
)

FP = "a" * 64  # a stand-in canonical run fingerprint


class TestDeterministicIds:
    def test_trace_id_is_stable_and_fingerprint_derived(self):
        assert trace_id_for(FP) == trace_id_for(FP)
        assert trace_id_for(FP) != trace_id_for("b" * 64)
        assert len(trace_id_for(FP)) == 32
        assert int(trace_id_for(FP), 16) >= 0  # hex

    def test_span_id_varies_by_name_and_occurrence(self):
        tid = trace_id_for(FP)
        assert span_id_for(tid, "run", 0) == span_id_for(tid, "run", 0)
        assert span_id_for(tid, "run", 0) != span_id_for(tid, "run", 1)
        assert span_id_for(tid, "run", 0) != span_id_for(tid, "plan", 0)
        assert len(span_id_for(tid, "run", 0)) == 16

    def test_two_tracers_assign_identical_ids(self):
        """Parent and worker derive the same ids independently — no id
        needs to cross the wire besides the parent span."""
        ids = []
        for _ in range(2):
            tracer = Tracer()
            with tracer.span("worker.run", fingerprint=FP):
                pass
            ids.append((tracer.spans[0]["trace_id"],
                        tracer.spans[0]["span_id"]))
        assert ids[0] == ids[1]


class TestSpanNesting:
    def test_child_parents_to_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("outer", fingerprint=FP):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans  # completion order: inner first
        assert inner["name"] == "inner"
        assert outer["parent_id"] is None
        assert inner["parent_id"] == outer["span_id"]
        assert inner["trace_id"] == outer["trace_id"] == trace_id_for(FP)

    def test_context_restored_after_span(self):
        tracer = Tracer()
        assert current_context() is None
        with tracer.span("s", fingerprint=FP):
            assert current_trace_id() == trace_id_for(FP)
        assert current_context() is None

    def test_exception_stamps_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing", fingerprint=FP):
                raise ValueError("boom")
        [span] = tracer.spans
        assert span["error"] == "ValueError"
        assert span["dur_us"] >= 0

    def test_repeated_names_get_sequential_occurrences(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("poll", fingerprint=FP):
                pass
        ids = [s["span_id"] for s in tracer.spans]
        assert len(set(ids)) == 3
        tid = trace_id_for(FP)
        assert ids == [span_id_for(tid, "poll", i) for i in range(3)]


class TestActivate:
    def test_adopted_context_becomes_parent(self):
        """A worker adopts the engine's (trace_id, parent span) and its
        spans slot under the parent's — the cross-process contract."""
        tid = trace_id_for(FP)
        tracer = Tracer()
        with activate(SpanContext(tid, "feedfeedfeedfeed")):
            with tracer.span("worker.run"):
                pass
        [span] = tracer.spans
        assert span["trace_id"] == tid
        assert span["parent_id"] == "feedfeedfeedfeed"

    def test_empty_span_id_means_no_parent(self):
        tracer = Tracer()
        with activate(SpanContext(trace_id_for(FP), "")):
            with tracer.span("worker.run"):
                pass
        assert tracer.spans[0]["parent_id"] is None

    def test_none_is_a_no_op(self):
        with activate(None):
            assert current_context() is None


class TestInstant:
    def test_instant_records_zero_duration_marker(self):
        tracer = Tracer()
        with tracer.span("request", fingerprint=FP):
            tracer.instant("queued", attrs={"queue_depth": 3})
        instant = next(s for s in tracer.spans if s["kind"] == "instant")
        assert instant["dur_us"] == 0
        assert instant["attrs"] == {"queue_depth": 3}
        assert instant["trace_id"] == trace_id_for(FP)  # from context


class TestAbsorbAndExport:
    def test_absorb_adopts_foreign_records_verbatim(self):
        worker = Tracer()
        with activate(SpanContext(trace_id_for(FP), "")):
            with worker.span("worker.run", fingerprint=FP):
                pass
        parent = Tracer()
        assert parent.absorb(worker.to_records()) == 1
        assert parent.absorb([{"not": "a span"}, "junk"]) == 0
        assert parent.spans[0]["span_id"] == worker.spans[0]["span_id"]

    def test_export_offsets_pids_and_carries_correlation_args(self):
        tracer = Tracer()
        with tracer.span("request", fingerprint=FP,
                         attrs={"path": "/run"}):
            pass
        builder = TraceBuilder()
        tracer.export_to(builder)
        doc = builder.to_dict()
        [event] = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert event["pid"] >= SPAN_PID_OFFSET
        assert event["args"]["trace_id"] == trace_id_for(FP)
        assert event["args"]["fingerprint"] == FP
        assert event["args"]["path"] == "/run"
        names = [e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M"]
        assert any(name.startswith("tracing pid") for name in names)

    def test_orphan_span_still_gets_a_trace_id(self):
        tracer = Tracer()
        with tracer.span("lonely"):
            pass
        assert tracer.spans[0]["trace_id"] == trace_id_for("orphan:lonely")

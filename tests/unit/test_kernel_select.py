"""Kernel registry, config plumbing and fingerprint semantics."""

from dataclasses import replace

import numpy as np
import pytest

from repro.config.system import KERNELS, config_fingerprint
from repro.errors import ConfigError
from repro.kernel import (
    Kernel,
    ReferenceKernel,
    VectorizedKernel,
    available_kernels,
    get_kernel,
)
from repro.pcm.write_model import IterationSampler
from repro.sim.runner import run_simulation

from ..conftest import make_tiny_config


class TestRegistry:
    def test_available_kernels(self):
        assert available_kernels() == ("reference", "vectorized")
        assert KERNELS == available_kernels()

    def test_lookup_by_name(self):
        assert isinstance(get_kernel("reference"), ReferenceKernel)
        assert isinstance(get_kernel("vectorized"), VectorizedKernel)
        assert get_kernel(None).name == "reference"

    def test_instance_passthrough(self):
        kernel = VectorizedKernel()
        assert get_kernel(kernel) is kernel

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigError, match="reference"):
            get_kernel("bogus")

    def test_base_kernel_is_abstract(self):
        base = Kernel()
        with pytest.raises(NotImplementedError):
            base.sample_iterations((), np.array([]), None)
        with pytest.raises(NotImplementedError):
            base.plan(np.array([]), np.array([]), 1)


class TestConfigPlumbing:
    def test_default_is_reference(self):
        assert make_tiny_config().kernel == "reference"

    def test_with_kernel(self):
        config = make_tiny_config().with_kernel("vectorized")
        assert config.kernel == "vectorized"
        # ... and everything else is untouched.
        assert replace(config, kernel="reference") == make_tiny_config()

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ConfigError, match="kernel"):
            make_tiny_config().with_kernel("scalar")

    def test_kernel_in_config_fingerprint(self):
        config = make_tiny_config()
        assert config_fingerprint(config) != config_fingerprint(
            config.with_kernel("vectorized")
        )

    def test_sampler_takes_kernel(self):
        config = make_tiny_config()
        sampler = IterationSampler(config.pcm, kernel="vectorized")
        assert sampler.kernel.vectorized
        assert not IterationSampler(config.pcm).kernel.vectorized


class TestResultFingerprint:
    def test_excludes_config(self):
        """Two runs that simulated identically hash equal even when
        their configs differ (that is the point: cross-kernel and
        cross-cache-layout comparisons)."""
        result = run_simulation(
            make_tiny_config(), "tig_m", "dimm-only",
            n_pcm_writes=20, max_refs_per_core=4_000,
        )
        relabeled = replace(
            result, config=result.config.with_kernel("vectorized")
        )
        assert result.result_fingerprint() == relabeled.result_fingerprint()

    def test_sensitive_to_outcome(self):
        result = run_simulation(
            make_tiny_config(), "tig_m", "dimm-only",
            n_pcm_writes=20, max_refs_per_core=4_000,
        )
        assert (
            replace(result, cycles=result.cycles + 1).result_fingerprint()
            != result.result_fingerprint()
        )
        assert (
            replace(result, scheme="other").result_fingerprint()
            != result.result_fingerprint()
        )

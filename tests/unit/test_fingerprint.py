"""Canonical config/run fingerprints.

The regression the fingerprint exists to prevent: the old hand-written
``_sim_key`` tuple silently omitted config fields (``memory.n_chips``,
``power.lcp_efficiency``, ``scheduler.truncation_max_cells``, ...), so
sweeps over those reused a stale cached result. The fingerprint walks
the dataclass tree generically — these tests prove that *every* leaf
field of ``SystemConfig`` participates, so a new field can never be
forgotten.
"""

import copy
import dataclasses

import pytest

from repro.config.presets import baseline_config
from repro.config.system import config_fingerprint
from repro.experiments.base import RunRequest, RunScale

from ..conftest import make_tiny_config


def leaf_paths(node, prefix=()):
    """Yield ``(path, value)`` for every leaf field of a dataclass tree.

    Path elements are field names, with integer indices for tuples of
    nested dataclasses (the PCM level models).
    """
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            yield from leaf_paths(value, prefix + (f.name,))
        elif (isinstance(value, tuple) and value
              and dataclasses.is_dataclass(value[0])):
            for index, item in enumerate(value):
                yield from leaf_paths(item, prefix + (f.name, index))
        else:
            yield prefix + (f.name,), value


def mutated_value(value):
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 1.25
    if isinstance(value, str):
        return value + "?"
    if value is None:
        return 123.0
    raise AssertionError(f"no mutation rule for {value!r}")


def with_leaf(node, path, value):
    """Rebuild a config with one leaf replaced, bypassing validation
    (``copy.copy`` + ``object.__setattr__`` skips ``__post_init__``), so
    even fields whose values are cross-constrained can be isolated."""
    head = path[0]
    if isinstance(head, int):
        items = list(node)
        items[head] = with_leaf(items[head], path[1:], value)
        return tuple(items)
    clone = copy.copy(node)
    if len(path) == 1:
        object.__setattr__(clone, head, value)
    else:
        object.__setattr__(
            clone, head, with_leaf(getattr(node, head), path[1:], value))
    return clone


class TestEveryLeafParticipates:
    def test_any_leaf_difference_changes_fingerprint(self):
        config = baseline_config()
        base = config_fingerprint(config)
        seen = {base}
        leaves = list(leaf_paths(config))
        assert len(leaves) > 40  # the whole Table 1 tree, not a subset
        for path, value in leaves:
            changed = with_leaf(config, path, mutated_value(value))
            digest = config_fingerprint(changed)
            assert digest != base, f"leaf {'.'.join(map(str, path))} ignored"
            assert digest not in seen, f"collision at {path}"
            seen.add(digest)

    @pytest.mark.parametrize("path", [
        ("memory", "n_chips"),
        ("memory", "n_banks"),
        ("power", "lcp_efficiency"),
        ("pcm", "bits_per_cell"),
        ("scheduler", "truncation_max_cells"),
        ("scheduler", "preset_reset_fraction"),
        ("wear_leveling",),
    ])
    def test_fields_the_old_sim_key_missed(self, path):
        """The exact fields ``_sim_key`` omitted (the stale-result bug)."""
        config = baseline_config()
        value = config
        for part in path:
            value = getattr(value, part)
        changed = with_leaf(config, path, mutated_value(value))
        assert config_fingerprint(changed) != config_fingerprint(config)


class TestStability:
    def test_equal_configs_share_a_fingerprint(self):
        assert config_fingerprint(baseline_config()) == \
            config_fingerprint(baseline_config())

    def test_independent_constructions_agree(self):
        assert config_fingerprint(make_tiny_config(seed=3)) == \
            config_fingerprint(make_tiny_config(seed=3))

    def test_seed_is_keyed(self):
        assert config_fingerprint(make_tiny_config(seed=1)) != \
            config_fingerprint(make_tiny_config(seed=2))


class TestRunRequestFingerprint:
    SCALE = RunScale("micro", 30, 8_000, ("tig_m",))

    def make(self, **overrides):
        fields = dict(config=make_tiny_config(), workload="tig_m",
                      scheme="fpb", scale=self.SCALE)
        fields.update(overrides)
        return RunRequest(**fields)

    def test_scheme_and_workload_keyed(self):
        base = self.make()
        assert self.make(scheme="ideal").fingerprint != base.fingerprint
        assert self.make(workload="mix_1").fingerprint != base.fingerprint

    def test_scale_numbers_keyed(self):
        bigger = RunScale("micro", 60, 8_000, ("tig_m",))
        assert self.make(scale=bigger).fingerprint != self.make().fingerprint

    def test_scale_name_and_workload_list_are_not(self):
        """Only the run-relevant scale parameters participate."""
        renamed = RunScale("other-name", 30, 8_000, ("tig_m", "mix_1"))
        assert self.make(scale=renamed).fingerprint == self.make().fingerprint

    def test_matches_serial_and_repeated_computation(self):
        a, b = self.make(), self.make()
        assert a is not b and a.fingerprint == b.fingerprint

"""The structured paper-claim registry."""

from repro.experiments.paper_targets import (
    FIG4_VS_IDEAL,
    FIG11_GCP_NE,
    FIG13_MAX_TOKENS,
    FIG19_LINE_SIZE,
    FIG20_LLC_MB,
    HEADLINE,
    TAB3_OVERHEAD_PERCENT,
    expected_ordering,
    within,
)


class TestTargets:
    def test_fig4_values(self):
        assert FIG4_VS_IDEAL["dimm+chip"] < FIG4_VS_IDEAL["dimm-only"] < 1.0

    def test_fig11_monotone_in_efficiency(self):
        assert FIG11_GCP_NE[0.95] > FIG11_GCP_NE[0.70] > FIG11_GCP_NE[0.50]

    def test_fig13_ordering(self):
        assert expected_ordering(FIG13_MAX_TOKENS) == ("vim", "bim", "ne")

    def test_tab3_gcp_cheaper_than_2xlocal(self):
        for key, value in TAB3_OVERHEAD_PERCENT.items():
            if key != "2xlocal":
                assert value < TAB3_OVERHEAD_PERCENT["2xlocal"]

    def test_fig19_grows_with_line_size(self):
        assert FIG19_LINE_SIZE[64] < FIG19_LINE_SIZE[128] < FIG19_LINE_SIZE[256]

    def test_fig20_drops_at_128m(self):
        assert FIG20_LLC_MB[128] < FIG20_LLC_MB[32]

    def test_headline(self):
        assert HEADLINE["throughput_gain"] == 3.4


class TestWithin:
    def test_exact_match(self):
        assert within(1.0, 1.0) is None

    def test_inside_tolerance(self):
        assert within(1.2, 1.0, rel_tol=0.5) is None

    def test_outside_tolerance(self):
        message = within(2.0, 1.0, rel_tol=0.5)
        assert message is not None
        assert "2.000" in message

    def test_zero_paper_value(self):
        assert within(5.0, 0.0) is None

"""Token pools: DIMM pool and per-chip LCP accounting."""

import pytest

from repro.errors import BudgetExceededError, TokenError
from repro.pcm.chip import PCMChip
from repro.power.tokens import TokenPool


class TestTokenPool:
    def test_initial_apt(self):
        pool = TokenPool(560.0)
        assert pool.available == 560.0

    def test_allocate_release(self):
        pool = TokenPool(80.0)
        pool.allocate(50.0)
        assert pool.available == 30.0
        pool.release(50.0)
        assert pool.available == 80.0

    def test_over_allocation_rejected(self):
        pool = TokenPool(80.0)
        pool.allocate(50.0)
        with pytest.raises(BudgetExceededError):
            pool.allocate(40.0)

    def test_over_release_rejected(self):
        pool = TokenPool(80.0)
        pool.allocate(10.0)
        with pytest.raises(TokenError):
            pool.release(20.0)

    def test_negative_amounts_rejected(self):
        pool = TokenPool(80.0)
        with pytest.raises(TokenError):
            pool.allocate(-1.0)
        with pytest.raises(TokenError):
            pool.release(-1.0)

    def test_min_available_tracked(self):
        pool = TokenPool(80.0)
        pool.allocate(70.0)
        pool.release(70.0)
        assert pool.min_available == 10.0

    def test_peak_allocated_tracked(self):
        pool = TokenPool(80.0)
        pool.allocate(30.0)
        pool.allocate(30.0)
        pool.release(60.0)
        assert pool.peak_allocated == 60.0

    def test_mean_allocated_time_weighted(self):
        pool = TokenPool(100.0)
        pool.allocate(40.0, now=0)
        pool.release(40.0, now=10)
        assert pool.mean_allocated(20) == pytest.approx(20.0)

    def test_resize(self):
        pool = TokenPool(80.0)
        pool.resize(20.0)
        assert pool.budget == 100.0
        pool.allocate(100.0)
        with pytest.raises(TokenError):
            pool.resize(-10.0)

    def test_zero_budget_rejected(self):
        with pytest.raises(TokenError):
            TokenPool(0.0)

    def test_epsilon_tolerance(self):
        pool = TokenPool(1.0)
        pool.allocate(1.0 - 1e-12)
        assert pool.can_allocate(1e-12)


class TestPCMChip:
    def test_free_accounting(self):
        chip = PCMChip(0, 66.5)
        chip.allocate(30.0)
        chip.lend(10.0)
        assert chip.free == pytest.approx(26.5)

    def test_over_allocation_rejected(self):
        chip = PCMChip(0, 66.5)
        chip.allocate(60.0)
        with pytest.raises(TokenError):
            chip.allocate(10.0)

    def test_lend_beyond_free_rejected(self):
        chip = PCMChip(0, 66.5)
        chip.allocate(60.0)
        with pytest.raises(TokenError):
            chip.lend(10.0)

    def test_reclaim_loan(self):
        chip = PCMChip(0, 66.5)
        chip.lend(20.0)
        chip.reclaim_loan(20.0)
        assert chip.free == 66.5

    def test_reclaim_beyond_loan_rejected(self):
        chip = PCMChip(0, 66.5)
        chip.lend(5.0)
        with pytest.raises(TokenError):
            chip.reclaim_loan(10.0)

    def test_release_beyond_allocated_rejected(self):
        chip = PCMChip(0, 66.5)
        chip.allocate(5.0)
        with pytest.raises(TokenError):
            chip.release(6.0)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(TokenError):
            PCMChip(0, 0.0)

"""Set-associative cache and the L1/L2/L3 hierarchy."""

import pytest

from repro.cache.hierarchy import CoreHierarchy, PCM_READ, PCM_WRITE
from repro.cache.set_assoc import SetAssocCache
from repro.config.system import CacheConfig, CacheLevelConfig


def small_cache(assoc=2, sets=4, line=64):
    return SetAssocCache(
        CacheLevelConfig(assoc * sets * line, assoc, line, 1), "t"
    )


class TestSetAssocCache:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0, False).hit
        assert cache.access(0, False).hit
        assert cache.access(63, False).hit  # same line

    def test_line_granularity(self):
        cache = small_cache()
        cache.access(0, False)
        assert not cache.access(64, False).hit

    def test_lru_eviction_order(self):
        cache = small_cache(assoc=2, sets=1)
        cache.access(0 * 64, False)
        cache.access(1 * 64, False)
        cache.access(0 * 64, False)       # 0 becomes MRU
        result = cache.access(2 * 64, False)
        assert result.victim_addr == 64   # LRU victim

    def test_dirty_eviction_reported(self):
        cache = small_cache(assoc=1, sets=1)
        cache.access(0, True)
        result = cache.access(64, False)
        assert result.victim_addr == 0
        assert result.victim_dirty

    def test_clean_eviction(self):
        cache = small_cache(assoc=1, sets=1)
        cache.access(0, False)
        result = cache.access(64, False)
        assert not result.victim_dirty

    def test_touch_dirty(self):
        cache = small_cache()
        cache.access(0, False)
        assert cache.touch_dirty(0)
        assert not cache.touch_dirty(4096 * 64)

    def test_install_no_demand_stats(self):
        cache = small_cache()
        cache.install(0, dirty=True)
        assert cache.misses == 0 and cache.hits == 0
        assert cache.contains(0)

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0, False)
        cache.access(0, False)
        assert cache.miss_rate() == pytest.approx(0.5)

    def test_prefill_fills_every_set(self):
        import numpy as np
        cache = small_cache(assoc=2, sets=4)
        tags = np.arange(8).reshape(4, 2)
        dirty = np.zeros((4, 2), dtype=bool)
        cache.prefill(tags, dirty)
        for s in range(4):
            line_addr = (tags[s, 0] * 4 + s) * 64
            assert cache.contains(line_addr)


def tiny_hierarchy(fetch_on_write_miss=True):
    caches = CacheConfig(
        l1=CacheLevelConfig(2 * 64 * 2, 2, 64, 1),    # 2 sets x 2 ways
        l2=CacheLevelConfig(4 * 64 * 4, 4, 64, 5),
        l3=CacheLevelConfig(8 * 256 * 4, 4, 256, 50),
    )
    return CoreHierarchy(caches, 0, fetch_on_write_miss=fetch_on_write_miss)


class TestCoreHierarchy:
    def test_cold_read_reaches_pcm(self):
        h = tiny_hierarchy()
        events = h.access(0, False)
        assert events == [(PCM_READ, 0)]

    def test_warm_read_filtered(self):
        h = tiny_hierarchy()
        h.access(0, False)
        assert h.access(0, False) == []

    def test_write_marks_l3_dirty(self):
        h = tiny_hierarchy()
        h.access(0, True)
        # Evict line 0 from L3 by filling its set.
        victims = []
        addr = 8 * 256  # same L3 set (8 sets)
        for k in range(4):
            victims += h.access(addr * (k + 1), False)
        assert (PCM_WRITE, 0) in victims

    def test_write_hit_in_l1_still_dirties_l3(self):
        h = tiny_hierarchy()
        h.access(0, False)   # load line
        h.access(0, True)    # L1 write hit
        victims = []
        for k in range(4):
            victims += h.access(8 * 256 * (k + 1), False)
        assert (PCM_WRITE, 0) in victims

    def test_nontemporal_store_skips_fetch(self):
        h = tiny_hierarchy(fetch_on_write_miss=False)
        events = h.access(0, True)
        assert events == []  # no PCM read for a streaming store

    def test_fetch_on_write_miss_reads(self):
        h = tiny_hierarchy(fetch_on_write_miss=True)
        events = h.access(0, True)
        assert events == [(PCM_READ, 0)]

    def test_pending_cycles_accumulate_and_reset(self):
        h = tiny_hierarchy()
        h.access(0, False)
        assert h.take_pending_cycles() > 0
        assert h.take_pending_cycles() == 0

    def test_writeback_precedes_demand_read(self):
        h = tiny_hierarchy()
        h.access(0, True)
        events = []
        k = 1
        while len(events) < 2:
            evs = h.access(8 * 256 * k, False)
            if any(kind == PCM_WRITE for kind, _ in evs):
                events = evs
            k += 1
        kinds = [kind for kind, _ in events]
        assert kinds.index(PCM_WRITE) < kinds.index(PCM_READ)

"""Charge-pump area model (Eq. 1) and Table 3 sizing."""

import pytest

from repro.errors import ConfigError
from repro.power.charge_pump import (
    ChargePumpDesign,
    area_overhead_fraction,
    pump_input_tokens,
)


class TestEquation1:
    def test_area_proportional_to_current(self):
        """Eq. 1: A_tot scales linearly with I_L for a fixed design."""
        pump = ChargePumpDesign()
        assert pump.area(2e-3) == pytest.approx(2 * pump.area(1e-3))

    def test_zero_current_zero_area(self):
        assert ChargePumpDesign().area(0.0) == 0.0

    def test_more_stages_more_area(self):
        low = ChargePumpDesign(n_stages=4)
        # More stages with the same headroom target cost quadratic area.
        high = ChargePumpDesign(n_stages=8)
        assert high.area(1e-3) > low.area(1e-3)

    def test_insufficient_stages_rejected(self):
        with pytest.raises(ConfigError):
            ChargePumpDesign(n_stages=1, vdd=1.0, vout=3.0)

    def test_negative_current_rejected(self):
        with pytest.raises(ConfigError):
            ChargePumpDesign().area(-1.0)


class TestTable3Sizing:
    def test_gcp_ne_095(self):
        """Table 3: GCP-NE-0.95 -> 66 / 0.95 ~= 70 tokens."""
        assert pump_input_tokens(66, 0.95) == pytest.approx(69.47, abs=0.01)

    def test_gcp_ne_070(self):
        """Table 3: GCP-NE-0.70 -> 64 / 0.70 ~= 92 tokens."""
        assert pump_input_tokens(64, 0.70) == pytest.approx(91.43, abs=0.01)

    def test_gcp_vim_070(self):
        """Table 3: GCP-VIM-0.70 -> 16 / 0.70 ~= 23 tokens (4.1%)."""
        pump = pump_input_tokens(16, 0.70)
        assert pump == pytest.approx(22.86, abs=0.01)
        assert area_overhead_fraction(pump, 560) == pytest.approx(0.0408, abs=0.001)

    def test_2xlocal_is_100_percent(self):
        assert area_overhead_fraction(560, 560) == 1.0

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ConfigError):
            pump_input_tokens(10, 0.0)

    def test_negative_tokens_rejected(self):
        with pytest.raises(ConfigError):
            pump_input_tokens(-1, 0.5)
        with pytest.raises(ConfigError):
            area_overhead_fraction(-1, 560)

"""Metrics registry: counters, gauges, log-scale histograms."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("writes")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(MetricsError):
            Counter("writes").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("depth")
        g.set(7)
        g.add(-3)
        assert g.value == 4.0


class TestHistogram:
    def test_log_buckets(self):
        h = Histogram("latency")
        for v in (0.0, 0.5, 1.0, 2.0, 3.0, 1000.0):
            h.observe(v)
        # [0,1) -> bucket 0; 1 -> 1; 2..3 -> 2; 1000 -> 10.
        assert h.buckets == {0: 2, 1: 1, 2: 2, 10: 1}
        assert h.count == 6
        assert h.min == 0.0 and h.max == 1000.0

    def test_mean_is_exact(self):
        h = Histogram("x")
        for v in (10, 20, 30):
            h.observe(v)
        assert h.mean == 20.0

    def test_rejects_negative(self):
        with pytest.raises(MetricsError):
            Histogram("x").observe(-1.0)

    def test_quantile_bounds(self):
        h = Histogram("x")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)
        # Bucket-resolution estimate: p50 of 1..100 lies in [32, 128].
        assert 32 <= h.quantile(0.5) <= 128
        with pytest.raises(MetricsError):
            h.quantile(1.5)

    def test_empty_snapshot(self):
        snap = Histogram("x").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None


class TestRegistry:
    def test_get_or_create_shares_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("writes")
        b = reg.counter("writes")
        assert a is b
        assert len(reg) == 1

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricsError):
            reg.gauge("x")

    def test_snapshot_groups_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(5)
        reg.histogram("h").observe(3)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 5.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_snapshot_is_json_safe(self):
        import json

        reg = MetricsRegistry()
        reg.histogram("h").observe(4.0)
        json.dumps(reg.snapshot())

    def test_names_and_contains(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]
        assert "a" in reg and "z" not in reg
        reg.reset()
        assert len(reg) == 0

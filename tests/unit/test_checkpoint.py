"""Checkpoint capsules: the store's trust model and the saver's policy.

Pure filesystem/policy tests — no simulation. Resume correctness (a
resumed run being byte-identical to an uninterrupted one) lives in
``tests/integration/test_checkpoint_resume``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.kernel import available_kernels, get_kernel
from repro.sim.checkpoint import (
    CKPT_SCHEMA_VERSION,
    Checkpointer,
    CheckpointPlan,
    CheckpointStore,
)
from repro.testing.faults import FaultSpec, clear_faults, install_faults

FP = "ab" + "0" * 62
FP2 = "cd" + "1" * 62


@pytest.fixture(autouse=True)
def no_faults():
    clear_faults()
    yield
    clear_faults()


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "ckpt")


class TestStoreRoundtrip:
    def test_put_then_latest(self, store):
        path = store.put(FP, b"state-100", cycle=5_000, writes_done=100)
        assert path is not None and path.is_file()
        capsule = store.latest(FP)
        assert capsule is not None
        assert capsule.fingerprint == FP
        assert capsule.cycle == 5_000
        assert capsule.writes_done == 100
        assert capsule.state == b"state-100"
        assert store.stores == 1 and store.loads == 1

    def test_latest_prefers_newest(self, store):
        store.put(FP, b"old", cycle=1_000, writes_done=100)
        store.put(FP, b"new", cycle=2_000, writes_done=200)
        assert store.latest(FP).state == b"new"

    def test_missing_run_is_none(self, store):
        assert store.latest(FP) is None
        assert store.latest_meta(FP) is None

    def test_prunes_to_keep_per_run(self, store):
        assert store.keep_per_run == 2
        for i in range(1, 6):
            store.put(FP, b"s%d" % i, cycle=i * 1_000, writes_done=i * 100)
        paths = sorted(store.dir_for(FP).glob("*.ckpt"))
        assert len(paths) == 2
        assert store.latest(FP).writes_done == 500

    def test_runs_are_isolated_by_fingerprint(self, store):
        store.put(FP, b"a", cycle=10, writes_done=1)
        store.put(FP2, b"b", cycle=20, writes_done=2)
        assert store.latest(FP).state == b"a"
        assert store.latest(FP2).state == b"b"

    def test_discard_drops_everything(self, store):
        store.put(FP, b"a", cycle=10, writes_done=1)
        store.put(FP, b"b", cycle=20, writes_done=2)
        assert store.discard(FP) == 2
        assert store.latest(FP) is None
        assert store.discards == 2


class TestStoreMeta:
    def test_latest_meta_reads_header_only(self, store):
        store.put(FP, b"x" * 1024, cycle=7_500, writes_done=300)
        meta = store.latest_meta(FP)
        assert meta["fingerprint"] == FP
        assert meta["writes_done"] == 300
        assert meta["cycle"] == 7_500
        assert meta["schema"] == CKPT_SCHEMA_VERSION
        # A peek is not a load: the digest-checked path wasn't taken.
        assert store.loads == 0


class TestStoreIntegrity:
    def test_corrupted_capsule_detected_and_unlinked(self, store):
        path = store.put(FP, b"state", cycle=100, writes_done=10)
        raw = path.read_bytes()
        path.write_bytes(raw[:-3] + bytes(3))  # trailing bytes mangled
        assert store.latest(FP) is None
        assert store.corrupt == 1
        assert not path.exists()

    def test_truncated_capsule_detected_and_unlinked(self, store):
        path = store.put(FP, b"state", cycle=100, writes_done=10)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert store.latest(FP) is None
        assert store.corrupt == 1

    def test_falls_back_to_older_valid_capsule(self, store):
        store.put(FP, b"older", cycle=100, writes_done=10)
        newest = store.put(FP, b"newer", cycle=200, writes_done=20)
        newest.write_bytes(b"garbage")
        capsule = store.latest(FP)
        assert capsule.state == b"older"
        assert store.corrupt == 1

    def test_wrong_fingerprint_rejected(self, store, tmp_path):
        # A capsule renamed/copied across runs must not resume: the
        # digest-protected payload embeds the owning fingerprint.
        source = store.put(FP, b"state", cycle=100, writes_done=10)
        target_dir = store.dir_for(FP2)
        target_dir.mkdir(parents=True)
        (target_dir / source.name).write_bytes(source.read_bytes())
        assert store.latest(FP2) is None

    def test_injected_corruption_caught(self, store):
        install_faults([FaultSpec(point="ckpt_corrupt", mode="corrupt",
                                  match=FP)])
        store.put(FP, b"state", cycle=100, writes_done=10)
        clear_faults()
        assert store.latest(FP) is None
        assert store.corrupt == 1

    def test_stale_schema_discarded(self, store, monkeypatch):
        store.put(FP, b"state", cycle=100, writes_done=10)
        import repro.sim.checkpoint as ckpt_mod
        monkeypatch.setattr(ckpt_mod, "CKPT_SCHEMA_VERSION",
                            CKPT_SCHEMA_VERSION + 1)
        assert store.latest(FP) is None
        assert store.corrupt == 1


class TestStoreBestEffort:
    def test_put_failure_logged_not_raised(self, store):
        install_faults([FaultSpec(point="ckpt_put", error="OSError",
                                  message="no space left on device")])
        assert store.put(FP, b"state", cycle=100, writes_done=10) is None
        clear_faults()
        assert store.store_errors == 1
        assert store.stores == 0
        assert store.latest(FP) is None


class TestStoreTooling:
    def test_runs_summary(self, store):
        store.put(FP, b"a", cycle=10, writes_done=100)
        store.put(FP, b"b", cycle=20, writes_done=200)
        store.put(FP2, b"c", cycle=30, writes_done=50)
        entries = {e["fingerprint"]: e for e in store.runs()}
        assert set(entries) == {FP, FP2}
        assert entries[FP]["capsules"] == 2
        assert entries[FP]["writes_done"] == 200
        assert entries[FP2]["writes_done"] == 50

    def test_gc_drops_completed_and_keeps_live(self, store):
        store.put(FP, b"a", cycle=10, writes_done=100)
        store.put(FP2, b"b", cycle=20, writes_done=50)
        summary = store.gc(completed=lambda fp: fp == FP)
        assert summary["runs_scanned"] == 2
        assert summary["runs_removed"] == 1
        assert store.latest(FP) is None
        assert store.latest(FP2) is not None

    def test_gc_drop_all(self, store):
        store.put(FP, b"a", cycle=10, writes_done=100)
        store.put(FP2, b"b", cycle=20, writes_done=50)
        summary = store.gc(drop_all=True)
        assert summary["runs_removed"] == 2
        assert store.runs() == []

    def test_snapshot_counters(self, store):
        store.put(FP, b"a", cycle=10, writes_done=100)
        snap = store.snapshot()
        assert snap["stores"] == 1
        assert snap["root"] == str(store.root)


class TestPlanValidation:
    def test_rejects_non_positive_interval(self, store):
        with pytest.raises(ValueError, match="positive"):
            CheckpointPlan(store=store, fingerprint=FP, every_writes=0)


class _FakeStats:
    def __init__(self):
        self.writes_done = 0


class _FakeHolder:
    def __init__(self):
        self.obs = object()  # stands in for the telemetry observer


class _FakeEngine:
    def snapshot(self, refs):
        # The holders' observers must be detached during the capture.
        assert refs["mem"].obs is None
        assert refs["manager"].obs is None
        return b"state@%d" % refs["stats"].writes_done


class TestCheckpointerPolicy:
    def _checkpointer(self, store, every=50):
        plan = CheckpointPlan(store=store, fingerprint=FP,
                              every_writes=every)
        refs = {"stats": _FakeStats(), "mem": _FakeHolder(),
                "manager": _FakeHolder()}
        return Checkpointer(plan, _FakeEngine(), refs), refs

    def test_saves_only_at_write_boundaries(self, store):
        hook, refs = self._checkpointer(store, every=50)
        stats = refs["stats"]
        for writes in (10, 20, 49):
            stats.writes_done = writes
            hook(now=writes * 100)
        assert hook.saved == 0
        stats.writes_done = 50
        hook(now=5_000)
        assert hook.saved == 1
        capsule = store.latest(FP)
        assert capsule.writes_done == 50
        assert capsule.state == b"state@50"

    def test_noop_when_writes_unchanged(self, store):
        hook, refs = self._checkpointer(store, every=1)
        refs["stats"].writes_done = 1
        hook(now=100)
        hook(now=200)  # same write count: read-events only, no save
        assert hook.saved == 1

    def test_interval_rebased_after_each_save(self, store):
        hook, refs = self._checkpointer(store, every=50)
        refs["stats"].writes_done = 120  # overshot two boundaries
        hook(now=1_000)
        assert hook.saved == 1
        refs["stats"].writes_done = 150  # next due is 170, not 150
        hook(now=2_000)
        assert hook.saved == 1
        refs["stats"].writes_done = 170
        hook(now=3_000)
        assert hook.saved == 2

    def test_observers_restored_after_capture(self, store):
        hook, refs = self._checkpointer(store, every=1)
        mem_obs, manager_obs = refs["mem"].obs, refs["manager"].obs
        refs["stats"].writes_done = 1
        hook(now=100)
        assert refs["mem"].obs is mem_obs
        assert refs["manager"].obs is manager_obs


class TestKernelResumableState:
    @pytest.mark.parametrize("name", available_kernels())
    def test_pickles_to_the_registry_singleton(self, name):
        kernel = get_kernel(name)
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone is kernel

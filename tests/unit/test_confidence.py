"""Multi-seed confidence estimation."""

import pytest

from repro.analysis.confidence import (
    Estimate,
    confidence_table,
    metric_confidence,
    speedup_confidence,
)
from repro.errors import ExperimentError

from ..conftest import make_tiny_config

FAST = dict(n_pcm_writes=30, max_refs_per_core=8_000, seeds=(1, 2))


class TestEstimate:
    def test_from_samples(self):
        est = Estimate.from_samples([1.0, 2.0, 3.0])
        assert est.mean == pytest.approx(2.0)
        assert est.std == pytest.approx(1.0)
        assert (est.minimum, est.maximum, est.n) == (1.0, 3.0, 3)

    def test_single_sample(self):
        est = Estimate.from_samples([5.0])
        assert est.mean == 5.0
        assert est.std == 0.0

    def test_interval_contains_mean(self):
        est = Estimate.from_samples([1.0, 1.5, 2.0, 1.2])
        lo, hi = est.interval95()
        assert lo <= est.mean <= hi

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            Estimate.from_samples([])

    def test_str(self):
        text = str(Estimate.from_samples([1.0, 2.0]))
        assert "±" in text and "n=2" in text


class TestSpeedupConfidence:
    def test_estimate_structure(self):
        """At micro scale Ideal can trail the baseline (greedy writes
        delay reads), so assert the estimate's structure, not a
        paper-scale ordering."""
        est = speedup_confidence(
            make_tiny_config(), "mcf_m", "ideal", **FAST,
        )
        assert est.n == 2
        assert est.mean > 0.2
        assert est.std >= 0.0

    def test_seed_variance_is_captured(self):
        est = speedup_confidence(
            make_tiny_config(), "mcf_m", "fpb", **FAST,
        )
        assert est.minimum <= est.mean <= est.maximum

    def test_no_seeds_rejected(self):
        with pytest.raises(ExperimentError):
            speedup_confidence(
                make_tiny_config(), "mcf_m", "fpb",
                seeds=(), n_pcm_writes=10, max_refs_per_core=2_000,
            )


class TestMetricConfidence:
    def test_burst_fraction(self):
        est = metric_confidence(
            make_tiny_config(), "mcf_m", "dimm+chip", "burst_fraction",
            **FAST,
        )
        assert 0.0 <= est.mean <= 1.0

    def test_unknown_metric(self):
        with pytest.raises(ExperimentError):
            metric_confidence(
                make_tiny_config(), "mcf_m", "ideal", "vibes",
                seeds=(1,), n_pcm_writes=10, max_refs_per_core=2_000,
            )


class TestTable:
    def test_multiple_schemes(self):
        table = confidence_table(
            make_tiny_config(), "mcf_m", ["ideal", "dimm+chip"], **FAST,
        )
        assert set(table) == {"ideal", "dimm+chip"}
        assert table["dimm+chip"].mean == pytest.approx(1.0)

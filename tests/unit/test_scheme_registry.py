"""Scheme name parsing and configuration implications."""

import pytest

from repro.config import baseline_config
from repro.core.policies.registry import (
    DEFAULT_MR_SPLITS,
    available_schemes,
    get_scheme,
)
from repro.errors import ConfigError
from repro.pcm.dimm import DIMM


class TestStaticSchemes:
    def test_available(self):
        names = available_schemes()
        for expected in ("ideal", "dimm-only", "dimm+chip", "pwl",
                         "2xlocal", "sche48", "fpb"):
            assert expected in names

    def test_ideal_flags(self):
        s = get_scheme("ideal")
        assert not s.enforce_dimm and not s.enforce_chip

    def test_dimm_only_flags(self):
        s = get_scheme("dimm-only")
        assert s.enforce_dimm and not s.enforce_chip

    def test_dimm_chip_flags(self):
        s = get_scheme("dimm+chip")
        assert s.enforce_dimm and s.enforce_chip and not s.ipm and not s.gcp

    def test_pwl(self):
        assert get_scheme("pwl").pwl

    def test_xlocal_scales_chips(self):
        cfg = get_scheme("2xlocal").apply_to_config(baseline_config())
        assert cfg.power.chip_budget_scale == 2.0
        assert DIMM(cfg).chips[0].budget == pytest.approx(133.0)

    def test_sche_sets_queue_and_window(self):
        s = get_scheme("sche48")
        assert s.ooo_window == 48
        cfg = s.apply_to_config(baseline_config())
        assert cfg.scheduler.write_queue_entries == 48

    def test_fpb_composition(self):
        s = get_scheme("fpb")
        assert s.ipm and s.gcp and s.mr_splits == DEFAULT_MR_SPLITS
        cfg = s.apply_to_config(baseline_config())
        assert cfg.cell_mapping == "bim"
        assert cfg.power.gcp_efficiency == 0.70


class TestParsedSchemes:
    def test_gcp_pattern(self):
        s = get_scheme("gcp-vim-0.5")
        assert s.gcp and not s.ipm
        assert s.mapping == "vim"
        assert s.gcp_efficiency == 0.5

    def test_gcp_ne_alias(self):
        assert get_scheme("gcp-ne-0.95").mapping == "ne"

    def test_ipm_defaults(self):
        s = get_scheme("ipm")
        assert s.ipm and s.gcp and s.mr_splits == 1
        assert s.mapping == "bim"
        assert s.gcp_efficiency == 0.70

    def test_ipm_mr_default_splits(self):
        assert get_scheme("ipm+mr").mr_splits == DEFAULT_MR_SPLITS

    def test_ipm_mr_explicit_splits(self):
        assert get_scheme("ipm+mr4").mr_splits == 4

    def test_ipm_with_mapping_and_efficiency(self):
        s = get_scheme("ipm+mr-vim-0.3")
        assert s.mapping == "vim"
        assert s.gcp_efficiency == 0.3
        assert s.mr_splits == DEFAULT_MR_SPLITS

    def test_case_insensitive(self):
        assert get_scheme("FPB").name == "fpb"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            get_scheme("warp-drive")

    def test_bad_efficiency_rejected(self):
        with pytest.raises(ConfigError):
            get_scheme("gcp-bim-1.5")

    def test_bad_mr_rejected(self):
        with pytest.raises(ConfigError):
            get_scheme("ipm+mr1")


class TestManagerConstruction:
    @pytest.mark.parametrize("name", [
        "ideal", "dimm-only", "dimm+chip", "pwl", "2xlocal", "sche24",
        "gcp-bim-0.7", "ipm", "ipm+mr", "fpb",
    ])
    def test_build_manager(self, name):
        scheme = get_scheme(name)
        cfg = scheme.apply_to_config(baseline_config())
        manager = scheme.build_manager(cfg, DIMM(cfg))
        assert manager.name == scheme.name
        assert (manager.gcp is not None) == scheme.gcp

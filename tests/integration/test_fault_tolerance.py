"""Chaos tests: the engine's resilience claims under injected faults.

Each test drives a real ``ProcessPoolExecutor`` through a deterministic
fault plan (:mod:`repro.testing.faults`): a worker hard-crashing (the
pool breaks), a worker hanging past the wall-clock budget, cache bytes
corrupted at store time, and the cache directory failing every write.
The common bar — the acceptance criterion of the robustness work — is
*partial-result semantics*: the unaffected runs complete with results
identical to a serial execution, the failure is recorded (summary,
failed-run registry, manifest), and nothing hangs or unwinds the plan.

Faults reach worker processes through the ``REPRO_FAULTS`` environment
variable (inherited at fork) and the parent process through
``install_faults``.
"""

from __future__ import annotations

import json
import multiprocessing
import time

import pytest

from repro.errors import RunFailedError
from repro.experiments.base import (
    RunRequest,
    RunScale,
    _SIM_CACHE,
    clear_failed_runs,
    clear_sim_cache,
    failed_runs,
    mark_run_failed,
    sim,
    use_disk_cache,
)
from repro.experiments.engine import dedupe_requests, execute_plan
from repro.experiments.fig17_mr_split import Fig17MRSplit
from repro.experiments.resilience import RetryPolicy
from repro.sim.simcache import SimCache
from repro.testing.faults import (
    ENV_VAR,
    FaultSpec,
    clear_faults,
    install_faults,
)

from ..conftest import make_tiny_config

MICRO = RunScale("micro", 30, 8_000, ("tig_m",))


@pytest.fixture(autouse=True)
def isolated(isolated_run_state):
    yield


def micro_plan(config):
    """Fig. 17's deduplicated run set: 3 Multi-RESET splits + baseline."""
    return dedupe_requests(Fig17MRSplit().plan(config, MICRO))


def serial_truth(config, requests):
    """Ground truth per fingerprint, computed serially and uncached."""
    clear_sim_cache()
    use_disk_cache(None)
    truth = {}
    for request in requests:
        result = sim(config, request.workload, request.scheme, MICRO)
        truth[request.fingerprint] = (
            result.cycles, result.cpi, result.stats.snapshot(),
        )
    clear_sim_cache()
    return truth


class TestWorkerCrash:
    def test_crash_is_isolated_and_the_plan_completes(self, tmp_path,
                                                      monkeypatch):
        """One of four runs hard-kills its worker on every attempt. The
        pool break cannot name the culprit, so the engine respawns and
        isolates; the three innocents finish bit-identical to serial,
        the culprit fails terminally after its retry budget."""
        config = make_tiny_config()
        requests = micro_plan(config)
        assert len(requests) == 4
        target = requests[1]
        survivors = [r for r in requests if r is not target]
        truth = serial_truth(config, survivors)

        monkeypatch.setenv(ENV_VAR, json.dumps([{
            "point": "worker_run", "mode": "crash",
            "match": target.fingerprint,
        }]))
        use_disk_cache(SimCache(tmp_path / "cache"))
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.01,
                             backoff_cap_s=0.05, max_pool_respawns=8)
        summary = execute_plan(requests, jobs=2, policy=policy)

        assert summary["computed"] == 3
        assert summary["failed"] == 1
        assert summary["quarantined"] == 0
        assert summary["retried"] == 1          # one charged retry
        assert summary["pool_respawns"] >= 2    # the break + isolated rerun
        [failure] = summary["failures"]
        assert failure["fingerprint"] == target.fingerprint
        assert failure["error_type"] == "BrokenProcessPool"
        assert failure["failure_class"] == "transient"
        assert failure["verdict"] == "fail"
        assert failure["attempts"] == 2
        assert target.fingerprint in failed_runs()

        # Partial results are exact, not merely close.
        for fingerprint, (cycles, cpi, snapshot) in truth.items():
            got = _SIM_CACHE[fingerprint]
            assert got.cycles == cycles
            assert got.cpi == cpi
            assert got.stats.snapshot() == snapshot

        # The experiment reports the proven-failed run instead of
        # blindly re-executing (and re-crashing on) it.
        with pytest.raises(RunFailedError, match="BrokenProcessPool"):
            Fig17MRSplit().run(config, MICRO)

    def test_replanning_gives_the_run_a_fresh_chance(self, tmp_path,
                                                     monkeypatch):
        """After the faulty environment clears, re-planning the same
        runs must succeed — terminal failures are per-plan, not forever."""
        config = make_tiny_config()
        requests = micro_plan(config)
        target = requests[0]
        stamp = tmp_path / "crash.stamp"
        # A cross-process one-shot: exactly one worker, once, ever.
        monkeypatch.setenv(ENV_VAR, json.dumps([{
            "point": "worker_run", "mode": "crash",
            "match": target.fingerprint, "stamp": str(stamp),
        }]))
        use_disk_cache(SimCache(tmp_path / "cache"))
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.01,
                             backoff_cap_s=0.05)
        summary = execute_plan(requests, jobs=2, policy=policy)
        # The single crash was absorbed: retried (or isolated) to success.
        assert summary["failed"] == summary["quarantined"] == 0
        assert summary["computed"] == 4
        assert stamp.exists()
        assert failed_runs() == {}


class TestRespawnBudget:
    def test_budget_exhaustion_fails_outstanding_not_hangs(self, tmp_path,
                                                           monkeypatch):
        """Every run crashes its worker; with a respawn budget of 1 the
        engine must give up promptly — failing everything outstanding —
        rather than thrash pools or spin forever."""
        config = make_tiny_config()
        requests = micro_plan(config)
        monkeypatch.setenv(ENV_VAR, json.dumps([{
            "point": "worker_run", "mode": "crash",
        }]))
        use_disk_cache(SimCache(tmp_path / "cache"))
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.01,
                             max_pool_respawns=1)
        summary = execute_plan(requests, jobs=2, policy=policy)
        assert summary["computed"] == 0
        assert summary["failed"] == len(requests)
        assert summary["pool_respawns"] == 2  # the allowed one + the fatal one
        assert len(summary["failures"]) == len(requests)
        for request in requests:
            assert request.fingerprint in failed_runs()


class TestHungWorker:
    def test_hang_is_abandoned_and_the_innocent_completes(self, tmp_path,
                                                          monkeypatch):
        """A worker sleeping far past the wall-clock budget is abandoned
        (pool terminated, not waited on); the innocent run's result is
        kept and the hung run is charged a WorkerTimeoutError."""
        config = make_tiny_config()
        innocent = RunRequest(config, "tig_m", "dimm+chip", MICRO)
        hung = RunRequest(config, "tig_m", "ipm+mr3", MICRO)
        monkeypatch.setenv(ENV_VAR, json.dumps([{
            "point": "worker_run", "mode": "hang", "hang_s": 120.0,
            "match": hung.fingerprint,
        }]))
        use_disk_cache(SimCache(tmp_path / "cache"))
        policy = RetryPolicy(max_attempts=1, run_timeout_s=3.0,
                             backoff_base_s=0.01)
        summary = execute_plan([innocent, hung], jobs=2, policy=policy)

        assert summary["computed"] == 1
        assert summary["timeouts"] == 1
        assert summary["failed"] == 1
        assert summary["pool_respawns"] == 1
        [failure] = summary["failures"]
        assert failure["fingerprint"] == hung.fingerprint
        assert failure["error_type"] == "WorkerTimeoutError"
        assert failure["failure_class"] == "transient"
        assert innocent.fingerprint in _SIM_CACHE
        assert hung.fingerprint in failed_runs()

        # "Abandoned" must mean killed: a worker left sleeping would
        # stall interpreter exit until its (long) sleep finishes.
        deadline = time.monotonic() + 10.0
        while (multiprocessing.active_children()
               and time.monotonic() < deadline):
            time.sleep(0.05)
        assert multiprocessing.active_children() == []


class TestCorruptedStoreDuringParallelRun:
    def test_detected_and_recomputed_identically(self, tmp_path):
        """Bytes corrupted on their way to disk during a parallel plan:
        the self-verifying entry is rejected on the next read and the
        run recomputes to the identical result."""
        config = make_tiny_config()
        requests = micro_plan(config)
        target = requests[0]
        cache = SimCache(tmp_path / "cache")
        use_disk_cache(cache)
        install_faults([FaultSpec(point="cache_corrupt", mode="corrupt",
                                  match=target.fingerprint, times=1)])
        summary = execute_plan(requests, jobs=2)
        clear_faults()
        assert summary["computed"] == 4
        assert summary["failed"] == 0
        original = _SIM_CACHE[target.fingerprint]

        # A fresh process (cold memory cache) probes the disk cache:
        # three valid entries hit, the corrupted one is detected.
        clear_sim_cache()
        use_disk_cache(cache)
        summary2 = execute_plan(requests, jobs=2)
        assert cache.corrupt == 1
        assert summary2["disk"] == 3
        assert summary2["computed"] == 1
        recomputed = _SIM_CACHE[target.fingerprint]
        assert recomputed.cycles == original.cycles
        assert recomputed.cpi == original.cpi
        assert recomputed.stats.snapshot() == original.stats.snapshot()


class TestCachePutErrors:
    def test_failing_disk_never_fails_the_plan(self, tmp_path):
        """Every store raises OSError (disk full): the plan and the
        experiment still complete entirely from the memory cache."""
        config = make_tiny_config()
        requests = micro_plan(config)
        cache = SimCache(tmp_path / "cache")
        use_disk_cache(cache)
        install_faults([FaultSpec(point="cache_put", error="OSError",
                                  message="no space left on device")])
        summary = execute_plan(requests, jobs=2)
        clear_faults()
        assert summary["computed"] == 4
        assert summary["failed"] == 0
        assert cache.store_errors == 4
        assert cache.stores == 0
        assert len(cache) == 0  # nothing persisted...
        result = Fig17MRSplit().run(config, MICRO)  # ...yet this renders
        assert result.rows


class TestFailedRunRegistry:
    def test_marked_run_raises_instead_of_executing(self):
        config = make_tiny_config()
        request = RunRequest(config, "tig_m", "fpb", MICRO)
        mark_run_failed(request.fingerprint,
                        "OSError: boom (fail after 3 attempt(s))")
        with pytest.raises(RunFailedError, match="boom") as info:
            sim(config, "tig_m", "fpb", MICRO)
        assert info.value.fingerprint == request.fingerprint
        # Clearing the registry (what a re-plan does) restores the run.
        clear_failed_runs([request.fingerprint])
        assert sim(config, "tig_m", "fpb", MICRO).cycles > 0


class TestCLIAcceptance:
    """The acceptance bar, driven through the real CLI: a fault injected
    into 1 of N planned runs, ``run --jobs 2 --keep-going`` completes
    the other N-1 bit-identical to serial, marks the failure in the
    manifest and summary, and exits nonzero."""

    def test_keep_going_run_with_injected_crash(self, tmp_path,
                                                monkeypatch):
        from repro.experiments import cli
        from repro.experiments.base import SCALES

        # Register the test scale and shrink the system so the four
        # fig17 runs stay sub-second; fingerprints then line up with the
        # serial ground truth below.
        monkeypatch.setitem(SCALES, "micro", MICRO)
        monkeypatch.setattr(cli, "baseline_config",
                            lambda seed=1: make_tiny_config(seed=seed))
        config = make_tiny_config(seed=1)
        requests = micro_plan(config)
        target = requests[2]
        truth = serial_truth(config,
                             [r for r in requests if r is not target])
        monkeypatch.setenv(ENV_VAR, json.dumps([{
            "point": "worker_run", "mode": "crash",
            "match": target.fingerprint,
        }]))

        manifest = tmp_path / "manifest.jsonl"
        out_dir = tmp_path / "out"
        exit_code = cli.main([
            "run", "fig17", "tab1", "--scale", "micro", "--jobs", "2",
            "--keep-going", "--retries", "1", "--seed", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--metrics-out", str(manifest),
            "--out", str(out_dir), "-q",
        ])
        assert exit_code == 1  # a partial sweep is not success

        # The N-1 surviving runs completed, bit-identical to serial.
        for fingerprint, (cycles, cpi, snapshot) in truth.items():
            got = _SIM_CACHE[fingerprint]
            assert (got.cycles, got.cpi) == (cycles, cpi)
            assert got.stats.snapshot() == snapshot

        # --keep-going: the affected experiment is marked FAILED on
        # disk, the unaffected one still renders.
        assert "FAILED" in (out_dir / "fig17.txt").read_text()
        assert (out_dir / "tab1.txt").read_text().strip()

        # The manifest tells the whole story.
        records = [json.loads(line)
                   for line in manifest.read_text().splitlines()]
        types = [record.get("type") for record in records]
        assert "retry" in types
        assert "pool_respawn" in types
        [failure] = [r for r in records
                     if r.get("type") == "run_failure"]
        assert failure["fingerprint"] == target.fingerprint
        assert failure["verdict"] == "fail"
        assert failure["failure_class"] == "transient"
        [plan] = [r for r in records if r.get("type") == "plan_summary"]
        assert plan["failed"] == 1
        assert plan["computed"] == 3
        [header] = [r for r in records if r.get("type") == "run_header"]
        assert header["exit_code"] == 1
        assert header["interrupted"] is False

    def test_check_flag_promotes_shape_discrepancies(self, monkeypatch):
        from repro.experiments import checks, cli

        monkeypatch.setattr(checks, "check_result",
                            lambda result: ["forced discrepancy"])
        base = ["run", "tab1", "--no-cache", "-q"]
        assert cli.main(base) == 0               # report-only by default
        assert cli.main(base + ["--check"]) == 1

    def test_interrupt_exits_130_and_still_writes_manifest(self, tmp_path,
                                                           monkeypatch):
        from repro.experiments import cli

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "plan_runs", interrupted)
        manifest = tmp_path / "manifest.jsonl"
        exit_code = cli.main([
            "run", "fig17", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--metrics-out", str(manifest), "-q",
        ])
        assert exit_code == 130  # the conventional 128+SIGINT
        records = [json.loads(line)
                   for line in manifest.read_text().splitlines()]
        [header] = [r for r in records if r.get("type") == "run_header"]
        assert header["exit_code"] == 130
        assert header["interrupted"] is True


class TestInterrupt:
    def test_engine_interrupt_tears_down_and_reraises(self, tmp_path,
                                                      monkeypatch):
        """KeyboardInterrupt mid-plan must propagate promptly — the pool
        (with possibly-running workers) is terminated, not joined."""
        import repro.experiments.engine as engine_mod

        config = make_tiny_config()
        requests = micro_plan(config)
        use_disk_cache(SimCache(tmp_path / "cache"))

        def interrupted_wait(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(engine_mod, "wait", interrupted_wait)
        with pytest.raises(KeyboardInterrupt):
            execute_plan(requests, jobs=2)

"""Paper-shape gates at QUICK scale (the full Table 1 system).

These run the real 8-core / 32MB-LLC configuration on the four
representative workloads and assert the paper's headline orderings.
They are the slowest tests in the suite (~1-2 minutes) and the
strongest evidence that the reproduction holds together.
"""

import pytest

from repro.analysis.metrics import gmean
from repro.config.presets import baseline_config
from repro.experiments.base import QUICK, sim


@pytest.fixture(scope="module")
def config():
    return baseline_config()


def gmean_speedups(config, schemes, baseline="dimm+chip"):
    out = {}
    for scheme in schemes:
        values = []
        for workload in QUICK.workloads:
            base = sim(config, workload, baseline, QUICK)
            values.append(sim(config, workload, scheme, QUICK)
                          .speedup_over(base))
        out[scheme] = gmean(values)
    return out


class TestHeadlineShapes:
    def test_figure4_ordering(self, config):
        s = gmean_speedups(
            config, ["ideal", "dimm-only", "dimm+chip", "2xlocal"],
        )
        # Ideal > DIMM-only > DIMM+chip; 2xlocal recovers toward DIMM-only.
        assert s["ideal"] > s["dimm-only"] > s["dimm+chip"] * 1.1
        assert s["2xlocal"] > s["dimm+chip"] * 1.2
        assert s["2xlocal"] > s["dimm-only"] * 0.8

    def test_figure12_mapping_ordering(self, config):
        s = gmean_speedups(
            config, ["gcp-ne-0.7", "gcp-vim-0.7", "gcp-bim-0.7"],
        )
        assert s["gcp-vim-0.7"] > s["gcp-ne-0.7"]
        assert s["gcp-bim-0.7"] > s["gcp-ne-0.7"]

    def test_figure16_fpb_recovers(self, config):
        s = gmean_speedups(
            config, ["gcp-bim-0.7", "ipm+mr", "ideal"],
        )
        # IPM+MR beats per-write GCP and lands near Ideal (paper: within
        # 12.2%; we allow 25% at quick scale).
        assert s["ipm+mr"] > s["gcp-bim-0.7"]
        assert s["ipm+mr"] >= s["ideal"] * 0.75
        # And the headline: a large gain over state-of-the-art budgeting.
        assert s["ipm+mr"] > 1.3

    def test_figure18_throughput_gain(self, config):
        gains = []
        for workload in QUICK.workloads:
            base = sim(config, workload, "dimm+chip", QUICK)
            fpb = sim(config, workload, "ipm+mr", QUICK)
            gains.append(fpb.throughput_ratio(base))
        assert gmean(gains) > 1.3

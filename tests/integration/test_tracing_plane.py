"""End-to-end tracing plane: cross-process spans, merged Perfetto
traces, Prometheus exposition and live ``/watch`` streaming.

The acceptance criteria for the tracing tentpole, exercised at micro
scale so tier-1 stays fast:

* a ``--jobs 2`` plan produces **one merged Perfetto trace** with spans
  from the parent and both worker processes, correlated by trace_id to
  the schema-v5 manifest records;
* the gateway's ``/metrics`` serves valid Prometheus text format 0.0.4
  under content negotiation (JSON stays the default);
* ``/watch`` streams at least queued → running → done lifecycle events
  for an in-flight run.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.experiments.base import RunScale, clear_sim_cache, use_telemetry
from repro.experiments.engine import execute_plan
from repro.experiments.fig17_mr_split import Fig17MRSplit
from repro.obs import Telemetry, read_manifest
from repro.obs.tracing import SPAN_PID_OFFSET, trace_id_for
from repro.service.schemas import SimRequest
from repro.service.testing import GatewayHarness

from ..conftest import make_tiny_config

MICRO = RunScale("micro", 30, 8_000, ("tig_m",))

#: Wire-level micro fields for gateway runs (same shape as the soak).
MICRO_FIELDS = {"scale": "quick", "n_pcm_writes": 40,
                "max_refs_per_core": 10_000}


@pytest.fixture(autouse=True)
def isolated(isolated_run_state):
    yield


def test_jobs2_plan_yields_one_merged_correlated_trace(tmp_path):
    """The headline acceptance: parent + both workers in one trace,
    correlated to the manifest by fingerprint-derived trace ids."""
    telemetry = Telemetry(sample_interval=1_000)
    use_telemetry(telemetry)
    config = make_tiny_config()
    requests = Fig17MRSplit().plan(config, MICRO)
    assert len(requests) == 4
    summary = execute_plan(requests, jobs=2)
    assert summary["computed"] == 4

    # Every run was computed in a worker yet arrived instrumented, with
    # a sidecar provenance record and a fingerprint-derived trace id.
    assert len(telemetry.runs) == 4
    assert all(run.get("instrumented") for run in telemetry.runs)
    assert len(telemetry.worker_telemetry) == 4
    worker_pids = {run["worker"] for run in telemetry.runs}
    assert len(worker_pids) == 2, (
        f"expected runs from both workers, got {worker_pids}")
    for run in telemetry.runs:
        assert run["trace_id"] == trace_id_for(run["fingerprint"])

    # One merged Perfetto export: parent span process + a process per
    # worker pid + a logical process per merged run.
    trace_path = tmp_path / "trace.json"
    telemetry.write_trace(trace_path)
    doc = json.loads(trace_path.read_text())
    events = doc["traceEvents"]
    spans = [e for e in events if e.get("ph") == "X"
             and isinstance(e.get("args"), dict)
             and "trace_id" in e["args"]]
    plan_spans = [e for e in spans if e["name"] == "plan.execute"]
    worker_spans = [e for e in spans if e["name"] == "worker.run"]
    assert len(plan_spans) == 1
    assert len(worker_spans) == 4
    assert {e["pid"] - SPAN_PID_OFFSET for e in worker_spans} == worker_pids
    # Simulated-time events from the workers merged in too, on their
    # re-assigned logical pids.
    sim_pids = {e["pid"] for e in events if e.get("cat") == "sim"}
    assert {run["pid"] for run in telemetry.runs} <= sim_pids

    # Manifest: schema v5, span + worker_telemetry records, every
    # worker run correlated by trace id to at least one span record.
    manifest_path = tmp_path / "runs.jsonl"
    telemetry.write_manifest(manifest_path, config, scale=MICRO.name)
    records = read_manifest(manifest_path)
    assert records[0]["schema_version"] >= 5
    span_tids = {r["trace_id"] for r in records if r["type"] == "span"}
    worker_records = [r for r in records if r["type"] == "worker_telemetry"]
    assert len(worker_records) == 4
    for run in (r for r in records if r["type"] == "sim_run"):
        assert run["trace_id"] in span_tids, (
            f"run {run['fingerprint']} has no span with its trace id")


def test_jobs2_results_identical_to_uninstrumented(tmp_path):
    """Worker-side capture must never change simulation results."""
    config = make_tiny_config()
    exp = Fig17MRSplit()
    execute_plan(exp.plan(config, MICRO), jobs=2)
    bare = exp.run(config, MICRO)

    clear_sim_cache()
    use_telemetry(Telemetry(sample_interval=1_000))
    execute_plan(exp.plan(config, MICRO), jobs=2)
    observed = exp.run(config, MICRO)

    assert observed.rows == bare.rows  # exact, including every float


class TestGatewayMetricsText:
    def test_metrics_negotiates_prometheus_text(self):
        with GatewayHarness(jobs=1, queue_limit=8) as harness:
            client = harness.client()
            client.run(**MICRO_FIELDS, workload="tig_m", scheme="fpb")

            # Default stays JSON.
            snapshot = client.metrics()["metrics"]
            assert snapshot["counters"]["service_requests_total"] >= 1

            content_type, body = client.metrics_text()
            assert content_type.startswith("text/plain")
            assert "version=0.0.4" in content_type
            assert "# TYPE service_requests_total counter" in body
            assert "# TYPE service_runs_served_computed counter" in body
            assert "# TYPE service_request_wall_ms_run histogram" in body
            assert 'service_request_wall_ms_run_bucket{le="+Inf"}' in body
            # The latency histogram satellite: the run was timed.
            count_lines = [l for l in body.splitlines()
                           if l.startswith("service_request_wall_ms_run_count")]
            assert count_lines and int(count_lines[0].split()[1]) >= 1


class TestWatchStream:
    def test_watch_streams_lifecycle_of_inflight_run(self):
        """Open the watcher first, then fire the run: the stream must
        carry at least queued, running and done, in order."""
        fields = {**MICRO_FIELDS, "workload": "mcf_m", "scheme": "ideal"}
        fingerprint = SimRequest.from_wire(fields).to_run_request().fingerprint
        with GatewayHarness(jobs=1, queue_limit=8) as harness:
            client = harness.client(timeout_s=120)
            events = []
            done = threading.Event()

            def consume():
                try:
                    for event in client.watch(fingerprint):
                        events.append(event)
                finally:
                    done.set()

            watcher = threading.Thread(target=consume, daemon=True)
            watcher.start()
            # Only fire once the subscription is live, so "queued" is
            # published after the watcher is listening.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if harness.gateway.snapshot()["watchers"] >= 1:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("watcher never registered")
            response = client.run(**fields)
            assert response["source"] == "computed"
            assert done.wait(timeout=60), f"watch never ended: {events}"
            watcher.join(timeout=10)

        kinds = [e["event"] for e in events]
        assert kinds[0] == "state"
        assert events[0]["status"] == "unknown"
        for expected in ("queued", "running", "done"):
            assert expected in kinds, f"missing {expected!r} in {kinds}"
        assert (kinds.index("queued") < kinds.index("running")
                < kinds.index("done"))
        assert all(e["fingerprint"] == fingerprint for e in events)
        done_event = events[kinds.index("done")]
        assert done_event["source"] == "computed"

    def test_watch_of_completed_run_reports_done_immediately(self):
        fields = {**MICRO_FIELDS, "workload": "tig_m", "scheme": "dimm+chip"}
        fingerprint = SimRequest.from_wire(fields).to_run_request().fingerprint
        with GatewayHarness(jobs=1, queue_limit=8) as harness:
            client = harness.client(timeout_s=120)
            client.run(**fields)
            events = list(client.watch(fingerprint))
        kinds = [e["event"] for e in events]
        assert kinds == ["state", "done"]
        assert events[0]["status"] == "done"
        assert events[1]["source"] == "memory"

    def test_watch_without_fingerprint_is_invalid(self):
        from repro.service.schemas import InvalidRequestError
        with GatewayHarness(jobs=1, queue_limit=8) as harness:
            client = harness.client()
            with pytest.raises(InvalidRequestError):
                list(client.watch(""))

"""Differential equivalence of the reference and vectorized kernels.

The vectorized kernel's contract is byte-identity, not closeness: for
every experiment the paper evaluates, both kernels must produce the
same ``SimResult`` fingerprint, and the Figure 5(b) worked example must
reproduce the paper's APT token trace token for token under either.

The experiment sweep covers every registered figN experiment's planned
runs (deduplicated), scaled down from the CLI's quick scale so the
whole differential sweep fits in a test run; CI's smoke job repeats the
fig16 comparison at true quick scale through the CLI.
"""

import numpy as np
import pytest

from repro.config.system import config_fingerprint
from repro.core.policies.base import PowerManager
from repro.core.write_op import WriteOperation
from repro.experiments.base import RunScale
from repro.experiments.registry import available_experiments, get_experiment
from repro.kernel import available_kernels
from repro.pcm.dimm import DIMM
from repro.sim.runner import run_simulation
from repro.trace.generator import clear_trace_cache

from ..conftest import make_figure5_config, make_tiny_config, reset_run_state

MICRO = RunScale("micro", 40, 10_000, ("mcf_m", "tig_m"))

#: The paper's Figure 5(b) APT trace: 80 available tokens initially,
#: then the step-downs/reclaims as WR-A and WR-B run their iterations.
FIG5_APT_TRACE = [30, 15, 35, 36, 38, 49, 57, 70, 74, 80]


@pytest.fixture(scope="module", autouse=True)
def fresh_caches():
    # Module-scoped on purpose: the differential sweep reuses sim
    # results across tests. Shared reset + the suite-local trace cache.
    reset_run_state()
    clear_trace_cache()
    yield
    reset_run_state()
    clear_trace_cache()


def _fig5_write(write_id, dimm, iteration_counts, kernel):
    idx = np.arange(len(iteration_counts)) * 7 % dimm.cells_per_line
    return WriteOperation(
        write_id, 0, 0,
        np.sort(np.unique(idx))[: len(iteration_counts)],
        np.asarray(iteration_counts), dimm.mapping, kernel=kernel,
    )


@pytest.mark.parametrize("kernel", available_kernels())
def test_figure5b_apt_trace_per_kernel(kernel):
    """Both kernels reproduce Figure 5(b)'s APT sequence exactly."""
    config = make_figure5_config().with_kernel(kernel)
    dimm = DIMM(config)
    manager = PowerManager(
        config, dimm, enforce_dimm=True, enforce_chip=False, ipm=True,
    )
    wr_a = _fig5_write(
        1, dimm, [1] * 2 + [2] * 22 + [3] * 14 + [4] * 12, manager.kernel
    )
    wr_b = _fig5_write(
        2, dimm, [1] * 4 + [2] * 16 + [3] * 8 + [4] * 8 + [5] * 4,
        manager.kernel,
    )
    assert wr_a.active.tolist() == [50, 48, 26, 12]
    assert wr_b.active.tolist() == [40, 36, 20, 12, 4]

    pool = manager.dimm_pool
    assert pool.available == 80
    apt = []
    assert manager.try_issue(wr_a, 0)
    apt.append(pool.available)
    assert manager.on_iteration_end(wr_a, 0, 1) == "advance"
    assert manager.try_issue(wr_b, 1)
    apt.append(pool.available)
    # Interleave the remaining iterations exactly as the figure does.
    timeline = [(wr_b, 0), (wr_a, 1), (wr_b, 1), (wr_a, 2), (wr_b, 2),
                (wr_a, 3), (wr_b, 3), (wr_b, 4)]
    for t, (write, i) in enumerate(timeline, start=2):
        outcome = manager.on_iteration_end(write, i, t)
        assert outcome == (
            "done" if i + 1 >= write.total_iterations else "advance"
        )
        apt.append(pool.available)
    assert apt == FIG5_APT_TRACE
    manager.assert_conserved()


def _planned_runs():
    """Unique (config, workload, scheme) triples over all figN
    experiments (experiments sweep configs too, so the config is part
    of the key)."""
    base = make_tiny_config()
    runs = {}
    for exp_id in available_experiments():
        if not exp_id.startswith("fig"):
            continue
        for req in get_experiment(exp_id).plan(base, MICRO):
            key = (config_fingerprint(req.config), req.workload, req.scheme)
            runs.setdefault(key, (req.config, req.workload, req.scheme))
    return list(runs.values())


def test_every_fig_experiment_fingerprint_identical():
    """Every planned run of every figN experiment simulates identically
    under both kernels (SimResult fingerprints are byte-identical)."""
    mismatches = []
    for config, workload, scheme in _planned_runs():
        fps = {}
        for kernel in available_kernels():
            result = run_simulation(
                config.with_kernel(kernel), workload, scheme,
                n_pcm_writes=MICRO.n_pcm_writes,
                max_refs_per_core=MICRO.max_refs_per_core,
            )
            fps[kernel] = result.result_fingerprint()
        if len(set(fps.values())) != 1:
            mismatches.append((workload, scheme, fps))
    assert not mismatches, f"kernel-dependent results: {mismatches}"


def test_kernels_never_share_cache_keys():
    """The kernel choice is part of the config fingerprint, so the
    SimCache can never serve one kernel's result to the other."""
    config = make_tiny_config()
    fingerprints = {
        config_fingerprint(config.with_kernel(kernel))
        for kernel in available_kernels()
    }
    assert len(fingerprints) == len(available_kernels())

"""Parallel engine vs serial execution: identical results, honest cache.

The acceptance bar from the engine's contract: an experiment executed
with a parallel prefetch (``--jobs N``) must produce row-for-row
*identical* ``ExperimentResult``s to a plain serial run — not merely
close. All random streams derive from ``config.seed`` and results cross
the process boundary via pickle (exact for ints and IEEE doubles), so
even floats must compare equal with ``==``.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import (
    RunRequest,
    RunScale,
    _SIM_CACHE,
    clear_sim_cache,
    sim,
    use_disk_cache,
)
from repro.experiments.engine import dedupe_requests, execute_plan
from repro.experiments.fig17_mr_split import Fig17MRSplit
from repro.experiments.registry import plan_runs
from repro.sim.simcache import SimCache

from ..conftest import make_tiny_config

MICRO = RunScale("micro", 30, 8_000, ("tig_m",))


@pytest.fixture(autouse=True)
def isolated_caches(isolated_run_state):
    """Every test starts and ends with pristine process-wide run
    state (shared machinery in tests/conftest.py)."""
    yield


def run_serial(config):
    clear_sim_cache()
    use_disk_cache(None)
    return Fig17MRSplit().run(config, MICRO)


class TestParallelEquivalence:
    def test_parallel_rows_identical_to_serial(self, tmp_path):
        config = make_tiny_config()
        serial = run_serial(config)

        clear_sim_cache()
        use_disk_cache(SimCache(tmp_path / "cache"))
        exp = Fig17MRSplit()
        requests = exp.plan(config, MICRO)
        summary = execute_plan(requests, jobs=4)
        assert summary["computed"] == summary["unique"] == 4
        parallel = exp.run(config, MICRO)

        assert parallel.columns == serial.columns
        assert len(parallel.rows) == len(serial.rows)
        for got, want in zip(parallel.rows, serial.rows):
            assert got == want  # exact — including every float

    def test_run_consumes_warm_hits_without_recompute(self, tmp_path):
        """After the prefetch, run() must not simulate anything."""
        config = make_tiny_config()
        use_disk_cache(SimCache(tmp_path / "cache"))
        exp = Fig17MRSplit()
        execute_plan(exp.plan(config, MICRO), jobs=2)
        before = dict(_SIM_CACHE)
        result = exp.run(config, MICRO)
        assert result.rows
        # run() added nothing: every request hit the warmed memory cache.
        assert set(_SIM_CACHE) == set(before)
        for key, value in before.items():
            assert _SIM_CACHE[key] is value

    def test_second_plan_served_entirely_from_disk(self, tmp_path):
        config = make_tiny_config()
        use_disk_cache(SimCache(tmp_path / "cache"))
        requests = Fig17MRSplit().plan(config, MICRO)
        first = execute_plan(requests, jobs=2)
        assert first["computed"] == first["unique"]

        # A fresh process would start with an empty memory cache.
        clear_sim_cache()
        use_disk_cache(SimCache(tmp_path / "cache"))
        second = execute_plan(requests, jobs=2)
        assert second["computed"] == 0
        assert second["disk"] == second["unique"] == first["unique"]

    def test_corrupted_disk_entry_recomputed_identically(self, tmp_path):
        config = make_tiny_config()
        cache = SimCache(tmp_path / "cache")
        use_disk_cache(cache)
        request = RunRequest(config, "tig_m", "fpb", MICRO)
        original = sim(config, "tig_m", "fpb", MICRO)

        # Truncate the stored entry, then resolve the same run cold.
        path = cache.path_for(request.fingerprint)
        path.write_bytes(path.read_bytes()[:50])
        clear_sim_cache()
        recomputed = sim(config, "tig_m", "fpb", MICRO)

        assert cache.corrupt == 1  # detected, not deserialized blindly
        assert recomputed.cycles == original.cycles
        assert recomputed.cpi == original.cpi
        assert recomputed.stats.snapshot() == original.stats.snapshot()


class TestPlanDedupe:
    def test_shared_runs_across_figures_collapse(self):
        """Figures 11-14 share their GCP sweep runs; the union of their
        plans must dedupe well below the naive total."""
        config = make_tiny_config()
        requests = plan_runs(["fig11", "fig12", "fig13", "fig14"],
                             config, MICRO)
        unique = dedupe_requests(requests)
        assert len(unique) < len(requests)
        fingerprints = {r.fingerprint for r in requests}
        assert len(unique) == len(fingerprints)

    def test_jobs_one_probes_but_does_not_compute(self, tmp_path):
        config = make_tiny_config()
        use_disk_cache(SimCache(tmp_path / "cache"))
        requests = Fig17MRSplit().plan(config, MICRO)
        summary = execute_plan(requests, jobs=1)
        expected = {
            "planned": len(requests), "unique": 4,
            "memory": 0, "disk": 0, "computed": 0,
        }
        assert {k: summary[k] for k in expected} == expected
        assert summary["failed"] == summary["quarantined"] == 0
        assert summary["failures"] == []
        assert not _SIM_CACHE  # nothing ran

"""Integration tests: exploration-session determinism and resume.

The acceptance contract of :mod:`repro.explore`:

* the same ``(space, strategy, seed)`` yields a byte-identical point
  sequence and frontier report, across strategies and across ``--jobs``
  / ``--batching`` execution modes;
* an exploration killed mid-session (a deterministic ``explore_point``
  fault) resumed from its journal converges to the identical frontier
  while **re-executing zero** already-cached fingerprints — asserted on
  the telemetry ``cache_event`` records;
* the journal + v9 manifest records account for every evaluated point.

Runs use a micro scale and a tiny config so tier-1 stays fast.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.base import RunScale, clear_sim_cache, use_telemetry
from repro.explore import (
    Axis,
    ExploreSession,
    ExploreSettings,
    SearchSpace,
    frontier_report,
)
from repro.obs import Telemetry
from repro.testing.faults import FaultSpec, clear_faults, install_faults

from ..conftest import make_tiny_config

#: Micro scale: real simulations, fast enough for tier-1.
MICRO = RunScale("micro", 40, 8_000, ("mix_1",))

BASE = make_tiny_config()


def small_space() -> SearchSpace:
    return SearchSpace(name="itest", axes=(
        Axis("dimm_tokens", values=(490.0, 560.0)),
        Axis("gcp_efficiency", values=(0.5, 0.85)),
        Axis("mr_splits", values=(1, 2)),
    ))


def settings(**overrides) -> ExploreSettings:
    fields = dict(space=small_space(), strategy="grid", budget_points=8,
                  seed=3, workload="mix_1", scheme="fpb", scale=MICRO)
    fields.update(overrides)
    return ExploreSettings(**fields)


def run_session(sets: ExploreSettings, tmp_path, name: str,
                resume: bool = False, telemetry=None):
    session = ExploreSession(sets, BASE, journal_dir=tmp_path / name,
                             telemetry=telemetry)
    return session, session.run(resume=resume)


def frontier_bytes(report) -> bytes:
    return json.dumps(frontier_report(report), sort_keys=True).encode()


@pytest.fixture(autouse=True)
def isolated(isolated_run_state):
    yield


class TestDeterminism:
    @pytest.mark.parametrize("strategy", ["grid", "random", "adaptive"])
    def test_same_settings_byte_identical_points_and_frontier(
            self, strategy, tmp_path, tmp_sim_cache):
        sets = settings(strategy=strategy)
        _, first = run_session(sets, tmp_path, "a")
        clear_sim_cache()  # force the disk/compute path the second time
        _, second = run_session(sets, tmp_path, "b")
        assert ([p["point"] for p in first["points"]]
                == [p["point"] for p in second["points"]])
        assert ([p["fingerprint"] for p in first["points"]]
                == [p["fingerprint"] for p in second["points"]])
        assert frontier_bytes(first) == frontier_bytes(second)

    def test_session_id_is_deterministic_and_sensitive(self, tmp_path):
        a = ExploreSession(settings(), BASE, journal_dir=tmp_path / "x")
        b = ExploreSession(settings(), BASE, journal_dir=tmp_path / "y")
        c = ExploreSession(settings(seed=4), BASE,
                           journal_dir=tmp_path / "z")
        assert a.session_id == b.session_id
        assert a.session_id != c.session_id

    def test_jobs_and_batching_equivalent_to_serial(self, tmp_path,
                                                    tmp_sim_cache):
        serial = run_session(settings(), tmp_path, "serial")[1]
        clear_sim_cache()
        batched = run_session(settings(batching="force"), tmp_path,
                              "batched")[1]
        clear_sim_cache()
        parallel = run_session(settings(jobs=2), tmp_path,
                               "parallel")[1]
        assert (frontier_bytes(serial) == frontier_bytes(batched)
                == frontier_bytes(parallel))


class TestResume:
    def kill_after(self, n: int):
        """Arm a fault that kills the session on evaluated point n+1."""
        install_faults([FaultSpec(point="explore_point", mode="error",
                                  nth=n + 1, error="RuntimeError")])

    def test_kill_then_resume(self, tmp_path, tmp_sim_cache):
        sets = settings()
        reference = run_session(sets, tmp_path, "ref")[1]

        clear_sim_cache()
        self.kill_after(5)
        with pytest.raises(RuntimeError):
            run_session(sets, tmp_path, "killed")
        clear_faults()

        # The journal holds the 5 points evaluated before the kill.
        clear_sim_cache()
        telemetry = Telemetry()
        use_telemetry(telemetry)  # capture cache_event records from fetch
        try:
            session, resumed = run_session(sets, tmp_path, "killed",
                                           resume=True,
                                           telemetry=telemetry)
        finally:
            use_telemetry(None)
        assert frontier_bytes(resumed) == frontier_bytes(reference)
        assert resumed["counts"]["restored"] == 5
        assert resumed["counts"]["evaluated"] == 8

        # Zero re-executed fingerprints: every cache_event for a
        # restored fingerprint must be absent entirely (journal restore
        # bypasses fetch), and no event at all may say "computed" for
        # a fingerprint the first attempt already cached on disk.
        restored = {p["fingerprint"] for p in resumed["points"]
                    if p["source"] == "journal"}
        events = telemetry.sim_requests
        assert all(e["fingerprint"] not in restored for e in events)
        computed = {e["fingerprint"] for e in events
                    if e["source"] == "computed"}
        cached_before = {p["fingerprint"] for p in resumed["points"]
                         if p["source"] == "disk"}
        assert not computed & cached_before

    def test_resume_without_journal_is_a_fresh_run(self, tmp_path,
                                                   tmp_sim_cache):
        sets = settings()
        _, report = run_session(sets, tmp_path, "fresh", resume=True)
        assert report["counts"]["restored"] == 0
        assert report["counts"]["evaluated"] == 8

    def test_fresh_run_discards_stale_journal(self, tmp_path,
                                              tmp_sim_cache):
        sets = settings()
        run_session(sets, tmp_path, "same")
        _, again = run_session(sets, tmp_path, "same", resume=False)
        assert again["counts"]["restored"] == 0

    def test_journal_tolerates_torn_tail(self, tmp_path, tmp_sim_cache):
        sets = settings()
        session, _ = run_session(sets, tmp_path, "torn")
        path = session.journal_path
        path.write_bytes(path.read_bytes() + b'{"type": "explore_po')
        resumed = ExploreSession(sets, BASE,
                                 journal_dir=tmp_path / "torn")
        report = resumed.run(resume=True)
        assert report["counts"]["restored"] == 8


class TestTelemetry:
    def test_v9_records_emitted(self, tmp_path, tmp_sim_cache):
        telemetry = Telemetry()
        _, report = run_session(settings(), tmp_path, "tele",
                                telemetry=telemetry)
        kinds = [r["type"] for r in telemetry.resilience_events]
        assert kinds.count("explore_point") == 8
        assert kinds.count("explore_frontier") == report["generations"]
        point = next(r for r in telemetry.resilience_events
                     if r["type"] == "explore_point")
        # /watch routing key is the session id.
        assert point["fingerprint"] == point["session"]
        assert point["run_fingerprint"] != point["session"]

    def test_manifest_roundtrip(self, tmp_path, tmp_sim_cache):
        from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, read_manifest

        assert MANIFEST_SCHEMA_VERSION == 9
        telemetry = Telemetry()
        run_session(settings(), tmp_path, "man", telemetry=telemetry)
        path = tmp_path / "manifest.jsonl"
        telemetry.write_manifest(path, BASE, seed=3, scale="micro")
        records = read_manifest(path)
        types = {r["type"] for r in records}
        assert {"explore_point", "explore_frontier"} <= types

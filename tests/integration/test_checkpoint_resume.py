"""Checkpoint/resume chaos suite: the acceptance bar of the
checkpointing work.

A run interrupted mid-simulation — by an in-process error, a
hard-killed worker (at a capsule boundary and between boundaries), or a
hang abandoned by the watchdog — must resume from its latest valid
capsule and produce a :class:`SimResult` **byte-identical** to an
uninterrupted run, on both kernels, including against the golden
fingerprint corpus. Corrupted capsules must be detected, discarded, and
the run restarted clean from write 0. Faults are deterministic
(:mod:`repro.testing.faults`); ``stamp`` files make crash/hang faults
fire exactly once across worker generations.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.config.system import config_fingerprint
from repro.experiments import golden
from repro.experiments.base import (
    RunRequest,
    RunScale,
    _SIM_CACHE,
    clear_sim_cache,
    use_checkpoints,
    use_disk_cache,
    use_telemetry,
)
from repro.experiments.engine import execute_plan
from repro.experiments.resilience import RetryPolicy
from repro.kernel import available_kernels
from repro.obs import Telemetry
from repro.sim.checkpoint import CheckpointPlan, CheckpointStore
from repro.sim.runner import run_simulation
from repro.sim.simcache import SimCache
from repro.testing.faults import (
    ENV_VAR,
    FaultSpec,
    clear_faults,
    install_faults,
)

from ..conftest import make_tiny_config

MICRO = RunScale("micro", 30, 8_000, ("tig_m",))

CORPUS_PATH = Path(__file__).parent.parent / "paper" / \
    "golden_fingerprints.json"


@pytest.fixture(autouse=True)
def isolated(isolated_run_state):
    yield


def result_bytes(result):
    """Every byte a run produced, for exact-equality assertions."""
    return (result.cycles, result.cpi, result.stats.snapshot(),
            list(result.stats.core_instructions),
            list(result.stats.core_finish_cycles),
            result.result_fingerprint())


def plan_for(tmp_path, fingerprint, every=50):
    store = CheckpointStore(tmp_path / "ckpt")
    return CheckpointPlan(store=store, fingerprint=fingerprint,
                          every_writes=every), store


class TestInProcessResume:
    """run_simulation(checkpoint=...) driven directly — no pool."""

    N_WRITES = 200
    FP = "ab" + "0" * 62

    def _run(self, cfg, checkpoint=None, telemetry=None):
        return run_simulation(cfg, "tig_m", "fpb",
                              n_pcm_writes=self.N_WRITES,
                              telemetry=telemetry, checkpoint=checkpoint)

    @pytest.mark.parametrize("kernel", available_kernels())
    def test_checkpointing_never_changes_results(self, tmp_path, kernel):
        """The read-only-hook guarantee, end to end: a run that
        checkpoints (but never crashes) is byte-identical to one that
        does not, and leaves no capsules behind."""
        cfg = make_tiny_config().with_kernel(kernel)
        baseline = self._run(cfg)
        plan, store = plan_for(tmp_path, self.FP)
        with_ckpt = self._run(cfg, checkpoint=plan)
        assert result_bytes(with_ckpt) == result_bytes(baseline)
        assert store.stores > 0
        assert store.latest(self.FP) is None  # discarded on success

    @pytest.mark.parametrize("kernel", available_kernels())
    def test_interrupted_run_resumes_byte_identical(self, tmp_path,
                                                    kernel):
        cfg = make_tiny_config().with_kernel(kernel)
        baseline = self._run(cfg)
        plan, store = plan_for(tmp_path, self.FP, every=50)
        install_faults([FaultSpec(point="sim_progress", error="OSError",
                                  match=f"{self.FP}:123")])
        with pytest.raises(OSError):
            self._run(cfg, checkpoint=plan)
        clear_faults()
        # Died at write 123: the newest capsule is the write-100 boundary.
        assert store.latest_meta(self.FP)["writes_done"] == 100
        resumed = self._run(cfg, checkpoint=plan)
        assert result_bytes(resumed) == result_bytes(baseline)
        assert store.latest(self.FP) is None

    def test_resumed_runs_agree_across_kernels(self, tmp_path):
        """Cross-kernel byte-identity must survive interruption: resume
        one kernel's run, run the other uninterrupted — equal."""
        fingerprints = {}
        for kernel in available_kernels():
            cfg = make_tiny_config().with_kernel(kernel)
            fp = kernel.ljust(64, "0")
            plan, store = plan_for(tmp_path / kernel, fp, every=50)
            install_faults([FaultSpec(point="sim_progress",
                                      error="OSError",
                                      match=f"{fp}:123")])
            with pytest.raises(OSError):
                self._run(cfg, checkpoint=plan)
            clear_faults()
            fingerprints[kernel] = self._run(
                cfg, checkpoint=plan).result_fingerprint()
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_corrupted_capsules_discarded_clean_restart(self, tmp_path):
        cfg = make_tiny_config()
        baseline = self._run(cfg)
        plan, store = plan_for(tmp_path, self.FP, every=50)
        install_faults([FaultSpec(point="sim_progress", error="OSError",
                                  match=f"{self.FP}:123")])
        with pytest.raises(OSError):
            self._run(cfg, checkpoint=plan)
        clear_faults()
        capsules = list(store.dir_for(self.FP).glob("*.ckpt"))
        assert capsules
        for path in capsules:  # every fallback is damaged too
            raw = path.read_bytes()
            path.write_bytes(raw[:-4] + bytes(4))
        restarted = self._run(cfg, checkpoint=plan)
        assert store.corrupt == len(capsules)
        assert result_bytes(restarted) == result_bytes(baseline)

    def test_truncated_capsule_falls_back_to_older(self, tmp_path):
        cfg = make_tiny_config()
        baseline = self._run(cfg)
        plan, store = plan_for(tmp_path, self.FP, every=50)
        install_faults([FaultSpec(point="sim_progress", error="OSError",
                                  match=f"{self.FP}:173")])
        with pytest.raises(OSError):
            self._run(cfg, checkpoint=plan)
        clear_faults()
        capsules = sorted(store.dir_for(self.FP).glob("*.ckpt"))
        assert len(capsules) == 2  # boundaries 100 and 150 retained
        newest = capsules[-1]
        newest.write_bytes(newest.read_bytes()[:40])
        resumed = self._run(cfg, checkpoint=plan)
        assert store.corrupt == 1
        assert result_bytes(resumed) == result_bytes(baseline)

    def test_telemetry_records_the_capsule_lifecycle(self, tmp_path):
        cfg = make_tiny_config()
        plan, store = plan_for(tmp_path, self.FP, every=50)
        install_faults([FaultSpec(point="sim_progress", error="OSError",
                                  match=f"{self.FP}:123")])
        interrupted = Telemetry()
        with pytest.raises(OSError):
            self._run(cfg, checkpoint=plan, telemetry=interrupted)
        clear_faults()
        saves = [r for r in interrupted.resilience_events
                 if r.get("type") == "checkpoint"]
        assert [r["action"] for r in saves] == ["save", "save"]
        assert [r["writes_done"] for r in saves] == [50, 100]

        resumed = Telemetry()
        self._run(cfg, checkpoint=plan, telemetry=resumed)
        events = [r for r in resumed.resilience_events
                  if r.get("type") == "checkpoint"]
        assert events[0]["action"] == "resume"
        assert events[0]["writes_done"] == 100
        assert events[0]["fingerprint"] == self.FP


class TestEngineChaosResume:
    """Supervised engine runs, real worker processes, real kills."""

    def _truth(self, config, request):
        clear_sim_cache()
        result = run_simulation(
            config, request.workload, request.scheme,
            n_pcm_writes=MICRO.n_pcm_writes,
            max_refs_per_core=MICRO.max_refs_per_core)
        clear_sim_cache()
        return result_bytes(result)

    def _execute(self, request, policy=None):
        return execute_plan(
            [request], jobs=2,
            policy=policy or RetryPolicy(max_attempts=3,
                                         backoff_base_s=0.01,
                                         backoff_cap_s=0.05,
                                         max_pool_respawns=8))

    def test_worker_killed_at_checkpoint_boundary(self, tmp_path,
                                                  monkeypatch):
        """Hard kill (os._exit) exactly when the worker is about to
        write its second capsule: the write-10 capsule survives, the
        retry resumes from it, and the result is byte-identical."""
        config = make_tiny_config()
        request = RunRequest(config, "tig_m", "fpb", MICRO)
        truth = self._truth(config, request)
        store = CheckpointStore(tmp_path / "ckpt")
        use_checkpoints(store, 10)
        use_disk_cache(SimCache(tmp_path / "cache"))
        telemetry = Telemetry()
        use_telemetry(telemetry)
        monkeypatch.setenv(ENV_VAR, json.dumps([{
            "point": "ckpt_put", "mode": "crash", "nth": 2,
            "match": request.fingerprint,
            "stamp": str(tmp_path / "boundary.stamp"),
        }]))
        summary = self._execute(request)
        assert summary["computed"] == 1
        assert summary["failed"] == summary["quarantined"] == 0
        assert result_bytes(_SIM_CACHE[request.fingerprint]) == truth
        # The retry genuinely resumed (not silently restarted): the
        # worker's merged telemetry carries the resume record.
        actions = [r["action"] for r in telemetry.resilience_events
                   if r.get("type") == "checkpoint"]
        assert "resume" in actions
        resume = next(r for r in telemetry.resilience_events
                      if r.get("type") == "checkpoint"
                      and r["action"] == "resume")
        assert resume["writes_done"] == 10

    def test_worker_killed_between_boundaries(self, tmp_path,
                                              monkeypatch):
        """Kill at write 15 — mid-interval, after the write-10 capsule:
        resume picks up the boundary capsule and replays the tail."""
        config = make_tiny_config()
        request = RunRequest(config, "tig_m", "fpb", MICRO)
        truth = self._truth(config, request)
        store = CheckpointStore(tmp_path / "ckpt")
        use_checkpoints(store, 10)
        use_disk_cache(SimCache(tmp_path / "cache"))
        monkeypatch.setenv(ENV_VAR, json.dumps([{
            "point": "sim_progress", "mode": "crash",
            "match": f"{request.fingerprint}:15",
            "stamp": str(tmp_path / "midrun.stamp"),
        }]))
        summary = self._execute(request)
        assert summary["computed"] == 1
        assert summary["failed"] == summary["quarantined"] == 0
        assert result_bytes(_SIM_CACHE[request.fingerprint]) == truth
        assert store.latest(request.fingerprint) is None  # cleaned up

    def test_hung_worker_abandoned_then_resumed(self, tmp_path,
                                                monkeypatch):
        """A mid-run hang past the wall-clock budget: the watchdog
        abandons the worker, and the retry resumes from the last capsule
        instead of re-executing from write 0."""
        config = make_tiny_config()
        request = RunRequest(config, "tig_m", "fpb", MICRO)
        truth = self._truth(config, request)
        store = CheckpointStore(tmp_path / "ckpt")
        use_checkpoints(store, 10)
        use_disk_cache(SimCache(tmp_path / "cache"))
        monkeypatch.setenv(ENV_VAR, json.dumps([{
            "point": "sim_progress", "mode": "hang", "hang_s": 120.0,
            "match": f"{request.fingerprint}:15",
            "stamp": str(tmp_path / "hang.stamp"),
        }]))
        policy = RetryPolicy(max_attempts=2, run_timeout_s=4.0,
                             backoff_base_s=0.01, max_pool_respawns=4)
        summary = self._execute(request, policy=policy)
        assert summary["computed"] == 1
        assert summary["timeouts"] == 1
        assert summary["failed"] == 0
        assert result_bytes(_SIM_CACHE[request.fingerprint]) == truth

    def test_crash_every_interval_converges_on_progress(self, tmp_path,
                                                        monkeypatch):
        """The forward-progress contract end to end: a worker that dies
        at *every* capsule boundary after the first would exhaust a
        2-attempt budget — but each attempt checkpoints further, so the
        budget keeps resetting and the run completes."""
        config = make_tiny_config()
        request = RunRequest(config, "tig_m", "fpb", MICRO)
        truth = self._truth(config, request)
        store = CheckpointStore(tmp_path / "ckpt")
        use_checkpoints(store, 10)
        use_disk_cache(SimCache(tmp_path / "cache"))
        # Crash on the 2nd capsule write of each worker generation:
        # capsule N survives, the kill lands on N+1. Three one-shot
        # stamped specs = three kills across successive workers.
        monkeypatch.setenv(ENV_VAR, json.dumps([
            {"point": "ckpt_put", "mode": "crash", "nth": 2,
             "match": request.fingerprint,
             "stamp": str(tmp_path / f"kill{i}.stamp")}
            for i in range(3)
        ]))
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.01,
                             backoff_cap_s=0.05, max_pool_respawns=10)
        summary = self._execute(request, policy=policy)
        assert summary["computed"] == 1
        assert summary["failed"] == summary["quarantined"] == 0
        assert result_bytes(_SIM_CACHE[request.fingerprint]) == truth


class TestGoldenConformanceAfterResume:
    """A resumed run must match the pinned golden corpus bit for bit —
    the same bar an uninterrupted run is held to — on both kernels."""

    def test_resumed_run_matches_corpus(self, tmp_path):
        document = golden.load_corpus(CORPUS_PATH)
        scale = golden.corpus_scale(document)
        request, _ = golden.corpus_runs(scale,
                                        seed=int(document["seed"]))[0]
        key = (request.workload, request.scheme,
               config_fingerprint(request.config))
        entry = next(
            e for e in document["runs"]
            if (e["workload"], e["scheme"], e["config"]) == key)
        for kernel in document["kernels"]:
            cfg = request.config.with_kernel(kernel)
            fp = kernel.ljust(64, "0")
            plan, store = plan_for(tmp_path / kernel, fp, every=50)
            # Interrupt early (write 60) so the test costs little more
            # than the one full run the resume performs.
            install_faults([FaultSpec(point="sim_progress",
                                      error="OSError",
                                      match=f"{fp}:60")])
            with pytest.raises(OSError):
                run_simulation(cfg, request.workload, request.scheme,
                               n_pcm_writes=scale.n_pcm_writes,
                               max_refs_per_core=scale.max_refs_per_core,
                               checkpoint=plan)
            clear_faults()
            assert store.latest_meta(fp)["writes_done"] == 50
            resumed = run_simulation(
                cfg, request.workload, request.scheme,
                n_pcm_writes=scale.n_pcm_writes,
                max_refs_per_core=scale.max_refs_per_core,
                checkpoint=plan)
            assert (resumed.result_fingerprint()
                    == entry["result_fingerprint"]), kernel


class TestCheckpointsCLI:
    def test_list_and_gc_smoke(self, tmp_path, caplog):
        from repro.experiments import cli

        store = CheckpointStore(tmp_path / "ckpt")
        fp = "e" * 64
        store.put(fp, b"state", cycle=1_000, writes_done=100)
        assert cli.main(["checkpoints", "list",
                         "--cache-dir", str(tmp_path)]) == 0
        # Not disk-cached (the run never completed): gc keeps it.
        assert cli.main(["checkpoints", "gc",
                         "--cache-dir", str(tmp_path)]) == 0
        assert store.latest(fp) is not None
        assert cli.main(["checkpoints", "gc", "--all",
                         "--cache-dir", str(tmp_path)]) == 0
        assert store.latest(fp) is None

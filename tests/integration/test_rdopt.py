"""Write cancellation, pausing and truncation (Section 6.4.5)."""

from dataclasses import replace

import pytest

from repro.config.system import SchedulerConfig
from repro.sim.runner import run_simulation

from ..conftest import make_tiny_config

N_WRITES = 60
MAX_REFS = 15_000


def rdopt_tiny(wc=False, wp=False, wt=False, queues=64):
    config = make_tiny_config()
    scheduler = SchedulerConfig(
        read_queue_entries=queues,
        write_queue_entries=queues,
        resp_queue_entries=queues,
        write_cancellation=wc,
        write_pausing=wp,
        write_truncation=wt,
    )
    return replace(config, scheduler=scheduler)


def run(config, scheme="fpb", workload="mcf_m"):
    return run_simulation(
        config, workload, scheme,
        n_pcm_writes=N_WRITES, max_refs_per_core=MAX_REFS,
    )


class TestWriteCancellation:
    def test_cancellations_happen(self):
        result = run(rdopt_tiny(wc=True))
        assert result.stats.write_cancellations > 0
        assert result.stats.write_pauses == 0

    def test_all_work_still_completes(self):
        base = run(rdopt_tiny())
        wc = run(rdopt_tiny(wc=True))
        assert wc.stats.writes_done == base.stats.writes_done
        assert wc.stats.reads_done == base.stats.reads_done

    def test_reads_get_faster(self):
        base = run(rdopt_tiny())
        wc = run(rdopt_tiny(wc=True))
        assert wc.stats.mean_read_latency <= base.stats.mean_read_latency * 1.2


class TestWritePausing:
    def test_pauses_happen(self):
        result = run(rdopt_tiny(wc=True, wp=True))
        assert result.stats.write_pauses > 0
        # With pausing enabled, reads preempt by pausing, not cancelling.
        assert result.stats.write_cancellations == 0

    def test_work_completes(self):
        base = run(rdopt_tiny())
        wp = run(rdopt_tiny(wc=True, wp=True))
        assert wp.stats.writes_done == base.stats.writes_done


class TestWriteTruncation:
    def test_truncation_shortens_writes(self):
        base = run(rdopt_tiny())
        wt = run(rdopt_tiny(wt=True))
        assert wt.stats.mean_write_latency < base.stats.mean_write_latency

    def test_truncation_helps_performance(self):
        base = run(rdopt_tiny())
        wt = run(rdopt_tiny(wt=True))
        assert wt.cpi <= base.cpi * 1.02


class TestFullStack:
    def test_combined_stack_beats_fpb_alone(self):
        """Figure 23's direction: FPB+WC+WP+WT >= FPB."""
        base = run(rdopt_tiny())
        full = run(rdopt_tiny(wc=True, wp=True, wt=True, queues=128))
        assert full.cpi <= base.cpi * 1.1

    def test_rdopt_with_baseline_scheme(self):
        result = run(rdopt_tiny(wc=True, wp=True, wt=True), scheme="dimm+chip")
        assert result.stats.writes_done > 0


class TestCancellationOfVerifyOnlyWrites:
    def test_cancelled_empty_write_completes_cleanly(self):
        """Regression: an empty (verify-only) write cancelled by a read
        must not fire its stale completion event against the bank."""
        import numpy as np
        from repro.trace.records import PCMAccess

        config = rdopt_tiny(wc=True)
        from repro.core.policies.registry import get_scheme
        from repro.pcm.dimm import DIMM
        from repro.sim import Core, MemorySystem, SimEngine
        from repro.sim.stats import SimStats

        spec = get_scheme("fpb")
        cfg = spec.apply_to_config(config)
        engine = SimEngine()
        stats = SimStats()
        dimm = DIMM(cfg)
        mem = MemorySystem(cfg, dimm, spec.build_manager(cfg, dimm),
                           engine, stats)
        empty = PCMAccess(
            core=0, kind="W", line_addr=0, gap_instr=1, gap_hit_cycles=0,
            changed_idx=np.zeros(0, dtype=np.int64),
            iter_counts=np.zeros(0, dtype=np.uint8),
        )
        # A read to the same bank arrives while the verify is running.
        read = PCMAccess(core=1, kind="R", line_addr=8 * 256 * 0,
                         gap_instr=200, gap_hit_cycles=0)
        cores = [Core(0, [empty], engine, mem), Core(1, [read], engine, mem)]
        for core in cores:
            core.start()
        end = engine.run()
        mem.finalize(end)
        assert not mem.work_outstanding
        assert stats.writes_done == 1
        assert stats.reads_done == 1

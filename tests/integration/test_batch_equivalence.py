"""Differential-equivalence harness for batched plan execution.

The batched tier's entire correctness claim is *indistinguishable from
serial*: grouping a plan into structure-sharing cohorts and executing
each in one worker pass must change throughput only — never a byte of
any result. These tests drive the claim end to end:

* **Full-registry sweep**: the union of every registered experiment's
  plan, on both kernels, executed serial / pooled (per-run engine) /
  batched — asserting byte-identical ``SimResult``s and identical
  golden ``result_fingerprint``s across all three.
* **Partition accounting**: ``auto`` declines singleton cohorts but
  batches multi-run ones; ``force`` batches everything; the summary's
  ``batch_*`` counters account for exactly the runs batched.
* **Chaos**: a fault-injected crash inside a cohort bisects down to
  the culprit run, hands it to the per-run tier (where supervision
  charges it a terminal failure), and every innocent run in the plan
  still completes byte-identically.

Scale is micro (30 writes) so the three-way sweep stays tier-1 cheap;
the full 224-run quick-scale corpus gets the same treatment in CI via
``golden --check --batching force``.
"""

from __future__ import annotations

import json

import pytest

from repro.config.system import KERNELS
from repro.experiments.base import (
    RunRequest,
    RunScale,
    cache_get,
    clear_sim_cache,
    failed_runs,
    fetch,
)
from repro.experiments.batch import partition_cohorts
from repro.experiments.engine import dedupe_requests, execute_plan
from repro.experiments.registry import available_experiments, plan_runs
from repro.experiments.resilience import RetryPolicy
from repro.testing.faults import ENV_VAR

from ..conftest import make_tiny_config

#: Tiny runs: the equivalence claim is structural, not scale-dependent.
MICRO = RunScale("micro", 30, 8_000, ("tig_m",))
MICRO_MULTI = RunScale("micro", 30, 8_000, ("tig_m", "mcf_m"))


@pytest.fixture(autouse=True)
def isolated(isolated_run_state):
    yield


def registry_plan(kernel: str):
    """The deduplicated union of every registered experiment's plan."""
    config = make_tiny_config().with_kernel(kernel)
    return dedupe_requests(
        plan_runs(list(available_experiments()), config, MICRO))


def serial_truth(requests):
    """Fingerprint -> result, computed serially with pristine caches."""
    clear_sim_cache()
    truth = {request.fingerprint: fetch(request) for request in requests}
    clear_sim_cache()
    return truth


def executed_results(requests, **plan_kwargs):
    summary = execute_plan(requests, **plan_kwargs)
    results = {}
    for request in requests:
        result = cache_get(request.fingerprint)
        assert result is not None, (
            f"{request.workload}/{request.scheme} missing after "
            f"execute_plan({plan_kwargs})")
        results[request.fingerprint] = result
    clear_sim_cache()
    return results, summary


@pytest.mark.parametrize("kernel", KERNELS)
def test_batched_equals_serial_and_pooled_for_every_experiment(kernel):
    """Every run any experiment plans: serial, pooled per-run, and
    batched execution produce byte-identical results and identical
    golden result fingerprints."""
    requests = registry_plan(kernel)
    assert len(requests) >= 20  # the registry really is covered
    truth = serial_truth(requests)

    pooled, pooled_summary = executed_results(requests, jobs=2)
    batched, batched_summary = executed_results(
        requests, jobs=2, batching="force")

    assert pooled_summary["computed"] == len(requests)
    assert batched_summary["computed"] == len(requests)
    assert batched_summary["batch_cohorts"] >= 1
    assert batched_summary["batch_runs"] == len(requests)
    assert batched_summary["failed"] == 0
    assert batched_summary["batch_fallbacks"] == 0

    for request in requests:
        key = request.fingerprint
        assert pooled[key] == truth[key], request
        assert batched[key] == truth[key], request
        assert (batched[key].result_fingerprint()
                == truth[key].result_fingerprint()), request


def test_kernels_agree_batched():
    """Golden contract under batching: both kernels' batched runs of
    the same simulation share one result fingerprint."""
    by_kernel = {}
    for kernel in KERNELS:
        requests = registry_plan(kernel)
        results, _ = executed_results(requests, jobs=2, batching="force")
        by_kernel[kernel] = {
            (request.workload, request.scheme): results[
                request.fingerprint].result_fingerprint()
            for request in requests
        }
    reference, vectorized = (by_kernel[kernel] for kernel in KERNELS)
    assert reference == vectorized


def sweep_plan(n_budgets: int = 4, workloads=("tig_m",)):
    """A budget sweep: one cohort per workload, ``n_budgets`` runs."""
    config = make_tiny_config()
    return [
        RunRequest(config.with_dimm_tokens(400.0 + 66.0 * i),
                   workload, "fpb", MICRO)
        for workload in workloads
        for i in range(n_budgets)
    ]


def singleton_plan():
    """Structurally-distinct runs: every cohort has exactly one run."""
    return [RunRequest(make_tiny_config(), workload, "fpb", MICRO_MULTI)
            for workload in MICRO_MULTI.workloads]


def test_auto_batches_cohorts_and_declines_singletons():
    sweep = sweep_plan()
    truth = serial_truth(sweep)
    results, summary = executed_results(sweep, jobs=2, batching="auto")
    assert summary["batch_cohorts"] == 1
    assert summary["batch_runs"] == len(sweep)
    assert all(results[k] == truth[k] for k in truth)

    singles = singleton_plan()
    truth = serial_truth(singles)
    results, summary = executed_results(singles, jobs=2, batching="auto")
    assert summary["batch_cohorts"] == 0
    assert summary["batch_runs"] == 0
    assert summary["computed"] == len(singles)  # per-run tier took them
    assert all(results[k] == truth[k] for k in truth)


def test_force_batches_singletons():
    singles = singleton_plan()
    truth = serial_truth(singles)
    results, summary = executed_results(singles, jobs=2, batching="force")
    assert summary["batch_cohorts"] == len(singles)
    assert summary["batch_runs"] == len(singles)
    assert all(results[k] == truth[k] for k in truth)


def test_unknown_batching_mode_rejected():
    with pytest.raises(ValueError):
        execute_plan(sweep_plan(), jobs=2, batching="always")


def test_crash_in_cohort_bisects_to_culprit_and_plan_completes(
        monkeypatch):
    """Chaos: one run in a 4-run cohort hard-crashes its worker every
    time it executes. The cohort bisects down to the culprit, the
    culprit falls back to the per-run tier (which charges it a terminal
    failure), and the three innocent runs complete byte-identically."""
    sweep = sweep_plan(n_budgets=4)
    assert len(partition_cohorts(sweep)) == 1
    doomed = sweep[2]
    innocents = [r for r in sweep if r is not doomed]
    truth = serial_truth(innocents)

    monkeypatch.setenv(ENV_VAR, json.dumps([{
        "point": "worker_run", "mode": "crash",
        "match": doomed.fingerprint,
    }]))
    policy = RetryPolicy(max_attempts=2, deterministic_attempts=1,
                         backoff_base_s=0.01, backoff_cap_s=0.05,
                         max_pool_respawns=8)
    summary = execute_plan(sweep, jobs=2, batching="force", policy=policy)

    assert summary["batch_bisections"] >= 1
    assert summary["batch_fallbacks"] >= 1
    assert summary["failed"] == 1
    assert summary["computed"] == len(innocents)
    assert doomed.fingerprint in failed_runs()
    for request in innocents:
        result = cache_get(request.fingerprint)
        assert result is not None
        assert result == truth[request.fingerprint]

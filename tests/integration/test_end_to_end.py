"""End-to-end simulations on a scaled-down system.

These run every power-budgeting scheme through the full stack (trace ->
controller -> DIMM -> policy) and check completion, accounting
invariants and the paper's qualitative orderings.
"""

import pytest

from repro.sim.runner import run_schemes, run_simulation
from repro.trace.generator import generate_trace

from ..conftest import make_tiny_config

N_WRITES = 60
MAX_REFS = 15_000

ALL_SCHEMES = [
    "ideal", "dimm-only", "dimm+chip", "pwl", "1.5xlocal", "2xlocal",
    "sche24", "gcp-ne-0.7", "gcp-vim-0.7", "gcp-bim-0.7", "ipm",
    "ipm+mr", "fpb",
]


@pytest.fixture(scope="module")
def results():
    config = make_tiny_config()
    return config, run_schemes(
        config, "mcf_m", ALL_SCHEMES,
        n_pcm_writes=N_WRITES, max_refs_per_core=MAX_REFS,
    )


class TestCompletion:
    def test_all_schemes_complete(self, results):
        config, res = results
        trace = generate_trace(
            config, "mcf_m", n_pcm_writes=N_WRITES,
            max_refs_per_core=MAX_REFS,
        )
        for name, result in res.items():
            assert result.stats.reads_done == trace.stats.reads, name
            assert result.stats.writes_done == trace.stats.writes, name

    def test_positive_cpi(self, results):
        _, res = results
        for name, result in res.items():
            assert result.cpi > 0, name
            assert result.cycles > 0, name

    def test_cells_written_conserved(self, results):
        config, res = results
        trace = generate_trace(
            config, "mcf_m", n_pcm_writes=N_WRITES,
            max_refs_per_core=MAX_REFS,
        )
        for name, result in res.items():
            assert result.stats.cells_written == trace.stats.total_cells_changed, name


class TestOrderings:
    def test_ideal_among_the_fastest(self, results):
        """Ideal has no power limit. It is not a strict upper bound in a
        timing simulator (issuing writes greedily can delay reads that a
        power-throttled scheme would have served first), but nothing
        should beat it by a wide margin."""
        _, res = results
        ideal = res["ideal"].cpi
        for name, result in res.items():
            assert result.cpi >= ideal * 0.75, name

    def test_chip_budget_hurts(self, results):
        _, res = results
        assert res["dimm+chip"].cpi >= res["dimm-only"].cpi * 0.98

    def test_fpb_recovers_most_of_the_loss(self, results):
        _, res = results
        base = res["dimm+chip"].cpi
        assert res["fpb"].cpi < base
        # FPB lands much closer to Ideal than to the baseline.
        gap_to_ideal = res["fpb"].cpi / res["ideal"].cpi
        assert gap_to_ideal < 1.6

    def test_bigger_pumps_help(self, results):
        _, res = results
        assert res["2xlocal"].cpi <= res["dimm+chip"].cpi
        assert res["1.5xlocal"].cpi <= res["dimm+chip"].cpi

    def test_fpb_beats_baseline(self, results):
        _, res = results
        assert res["fpb"].cpi < res["dimm+chip"].cpi

    def test_speedup_over_self_is_one(self, results):
        _, res = results
        assert res["fpb"].speedup_over(res["fpb"]) == pytest.approx(1.0)


class TestSchemeMechanics:
    def test_gcp_used_only_by_gcp_schemes(self, results):
        _, res = results
        assert res["dimm+chip"].stats.gcp_peak_output == 0.0
        assert res["gcp-ne-0.7"].stats.gcp_peak_output >= 0.0

    def test_multireset_only_under_mr_schemes(self, results):
        _, res = results
        assert res["ipm"].stats.multi_reset_writes == 0
        assert res["dimm+chip"].stats.multi_reset_writes == 0

    def test_burst_fraction_in_range(self, results):
        _, res = results
        for name, result in res.items():
            assert 0.0 <= result.stats.burst_fraction <= 1.0, name


class TestDeterminism:
    def test_same_seed_same_result(self):
        config = make_tiny_config()
        a = run_simulation(config, "lbm_m", "fpb",
                           n_pcm_writes=40, max_refs_per_core=10_000)
        b = run_simulation(config, "lbm_m", "fpb",
                           n_pcm_writes=40, max_refs_per_core=10_000)
        assert a.cycles == b.cycles
        assert a.cpi == b.cpi
        assert a.stats.summary() == b.stats.summary()

    def test_different_seed_different_result(self):
        a = run_simulation(make_tiny_config(seed=1), "lbm_m", "fpb",
                           n_pcm_writes=40, max_refs_per_core=10_000)
        b = run_simulation(make_tiny_config(seed=9), "lbm_m", "fpb",
                           n_pcm_writes=40, max_refs_per_core=10_000)
        assert a.cycles != b.cycles


class TestWorkloadSweep:
    @pytest.mark.parametrize("workload", ["lbm_m", "tig_m", "xal_m", "mix_1"])
    def test_runs_clean(self, workload):
        config = make_tiny_config()
        result = run_simulation(
            config, workload, "fpb",
            n_pcm_writes=40, max_refs_per_core=10_000,
        )
        assert result.cycles > 0

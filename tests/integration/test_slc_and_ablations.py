"""SLC-mode simulation and the ablation experiments."""

from dataclasses import replace

import pytest

from repro.config.presets import slc_config
from repro.experiments.base import RunScale
from repro.experiments.registry import get_experiment
from repro.sim.runner import run_simulation
from repro.trace.generator import generate_trace

from ..conftest import make_tiny_config

MICRO = RunScale("micro", 40, 10_000, ("mcf_m", "lbm_m"))


def tiny_slc_config():
    base = make_tiny_config()
    slc = slc_config()
    return replace(base, pcm=slc.pcm)


class TestSLCMode:
    def test_slc_trace_generates(self):
        trace = generate_trace(
            tiny_slc_config(), "mcf_m",
            n_pcm_writes=30, max_refs_per_core=8_000,
        )
        assert trace.stats.writes > 0
        # SLC cells are one per bit: 2048 per 256B line.
        for stream in trace.per_core:
            for acc in stream:
                if acc.kind == "W" and acc.changed_idx.size:
                    assert acc.changed_idx.max() < 2048
                    # Every SLC write finishes in one iteration.
                    assert acc.iter_counts.max() == 1

    def test_slc_simulation_runs(self):
        result = run_simulation(
            tiny_slc_config(), "mcf_m", "dimm+chip",
            n_pcm_writes=30, max_refs_per_core=8_000,
        )
        assert result.stats.writes_done > 0

    def test_slc_writes_are_fast(self):
        """Single-iteration SLC writes are much shorter than MLC's
        multi-iteration ones (the paper's 'x8 long write latency')."""
        slc = run_simulation(
            tiny_slc_config(), "mcf_m", "ideal",
            n_pcm_writes=30, max_refs_per_core=8_000,
        )
        mlc = run_simulation(
            make_tiny_config(), "mcf_m", "ideal",
            n_pcm_writes=30, max_refs_per_core=8_000,
        )
        assert slc.stats.mean_write_latency < mlc.stats.mean_write_latency


class TestAblations:
    def test_abl_mr_runs(self):
        result = get_experiment("abl_mr")(make_tiny_config(), MICRO)
        row = result.row_by("workload", "gmean")
        assert all(
            float(row[s]) > 0 for s in ("ipm", "fpb", "fpb-mrchanged")
        )

    def test_abl_preread_overhead_sign(self):
        result = get_experiment("abl_preread")(make_tiny_config(), MICRO)
        mean_row = result.row_by("workload", "mean")
        # A free pre-read can only help (or tie).
        assert float(mean_row["overhead_%"]) >= -8.0

    def test_abl_fnw_confirms_limited_mlc_benefit(self):
        result = get_experiment("abl_fnw")(make_tiny_config(), MICRO)
        for row in result.rows:
            assert 0.0 <= float(row["mlc_saving_%"]) < 30.0

    def test_mrchanged_scheme_registered(self):
        from repro.core import get_scheme
        scheme = get_scheme("fpb-mrchanged")
        assert scheme.mr_grouping == "changed"


class TestPreSETAblation:
    def test_preset_speeds_up_unbudgeted_writes(self):
        """Single-RESET foreground writes are far faster than iterative
        MLC writes when power is unlimited."""
        result = get_experiment("abl_preset")(make_tiny_config(), MICRO)
        row = result.row_by("workload", "gmean")
        assert float(row["ideal+preset"]) > float(row["ideal"])

    def test_preset_token_demand_widens_budget_gap(self):
        """Section 7's claim, quantified: under power budgets PreSET
        keeps less of its unbudgeted gain than normal writes keep of
        theirs (the RESET-everything demand eats tokens)."""
        result = get_experiment("abl_preset")(make_tiny_config(), MICRO)
        row = result.row_by("workload", "gmean")
        plain_ratio = float(row["fpb"]) / float(row["ideal"])
        preset_ratio = float(row["fpb+preset"]) / float(row["ideal+preset"])
        assert preset_ratio < plain_ratio + 0.05

    def test_preset_flag_changes_write_shape(self):
        """With preset enabled, writes are single-iteration and heavy."""
        from dataclasses import replace
        config = make_tiny_config()
        preset = replace(config, scheduler=replace(
            config.scheduler, preset_writes=True))
        base = run_simulation(config, "mcf_m", "ideal",
                              n_pcm_writes=30, max_refs_per_core=8_000)
        fast = run_simulation(preset, "mcf_m", "ideal",
                              n_pcm_writes=30, max_refs_per_core=8_000)
        assert fast.stats.mean_write_latency < base.stats.mean_write_latency
        assert fast.stats.cells_written > base.stats.cells_written

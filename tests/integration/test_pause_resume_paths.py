"""Write-pausing edge paths: pause/resume interplay with bursts and
multi-round writes."""

from dataclasses import replace

import numpy as np
import pytest

from repro.config.system import SchedulerConfig
from repro.core.policies.registry import get_scheme
from repro.pcm.dimm import DIMM
from repro.sim import Core, MemorySystem, SimEngine, Timeline
from repro.sim.stats import SimStats
from repro.trace.records import PCMAccess, READ, WRITE

from ..conftest import make_tiny_config

LINE = 256


def wp_config(queues=64):
    config = make_tiny_config()
    return replace(config, scheduler=SchedulerConfig(
        read_queue_entries=queues, write_queue_entries=queues,
        resp_queue_entries=queues,
        write_cancellation=True, write_pausing=True,
    ))


def write_rec(addr, n=40, gap=100, iters=8, core=0):
    idx = np.unique(np.linspace(0, 1023, n).astype(np.int64))
    return PCMAccess(core=core, kind=WRITE, line_addr=addr, gap_instr=gap,
                     gap_hit_cycles=0, changed_idx=idx,
                     iter_counts=np.full(idx.size, iters, dtype=np.uint8))


def read_rec(addr, gap=100, core=1):
    return PCMAccess(core=core, kind=READ, line_addr=addr,
                     gap_instr=gap, gap_hit_cycles=0)


def run(streams, config=None, scheme="fpb", with_timeline=False):
    config = config or wp_config()
    spec = get_scheme(scheme)
    cfg = spec.apply_to_config(config)
    engine = SimEngine()
    stats = SimStats()
    dimm = DIMM(cfg)
    mem = MemorySystem(cfg, dimm, spec.build_manager(cfg, dimm),
                       engine, stats)
    timeline = Timeline().attach(mem) if with_timeline else None
    cores = [Core(i, s, engine, mem) for i, s in enumerate(streams)]
    for core in cores:
        core.start()
    end = engine.run()
    assert not mem.work_outstanding
    mem.finalize(end)
    return stats, timeline


class TestPauseResume:
    def test_paused_write_resumes_and_completes(self):
        streams = [
            [write_rec(0, iters=12)],
            [read_rec(8 * LINE, gap=1200)],  # same bank, mid-write
        ]
        stats, timeline = run(streams, with_timeline=True)
        assert stats.write_pauses >= 1
        assert stats.writes_done == 1
        assert stats.reads_done == 1
        kinds = [e.kind for e in timeline.events]
        assert "write_paused" in kinds
        # The pause happened before the read was served.
        pause_t = timeline.of_kind("write_paused")[0].time
        read_t = timeline.of_kind("read_issue")[-1].time
        assert pause_t <= read_t

    def test_pause_speeds_up_the_read(self):
        streams_wp = [
            [write_rec(0, iters=12)],
            [read_rec(8 * LINE, gap=1200)],
        ]
        stats_wp, _ = run(streams_wp)
        streams_plain = [
            [write_rec(0, iters=12)],
            [read_rec(8 * LINE, gap=1200)],
        ]
        stats_plain, _ = run(streams_plain, config=make_tiny_config())
        assert stats_wp.mean_read_latency < stats_plain.mean_read_latency

    def test_multiple_pauses_one_write(self):
        reads = [read_rec(8 * LINE, gap=2500, core=1) for _ in range(3)]
        stats, _ = run([[write_rec(0, iters=14)], reads])
        assert stats.write_pauses >= 2
        assert stats.writes_done == 1

    def test_pause_with_multiround_write(self):
        """An oversized write splits into rounds; pausing one round must
        not lose the remaining rounds."""
        idx = np.arange(120)  # hot chip 0 -> 2 rounds
        big = PCMAccess(core=0, kind=WRITE, line_addr=0, gap_instr=1,
                        gap_hit_cycles=0, changed_idx=idx,
                        iter_counts=np.full(120, 10, dtype=np.uint8))
        reads = [read_rec(8 * LINE, gap=3000, core=1) for _ in range(2)]
        # Per-write budgeting (no Multi-RESET) forces the round split.
        stats, _ = run([[big], reads], scheme="dimm+chip")
        assert stats.writes_done == 1
        assert stats.write_rounds_done == 2

    def test_tokens_released_while_paused(self):
        """A paused write holds no tokens, so another bank's write can
        use the full budget."""
        streams = [
            [write_rec(0, n=300, iters=12),          # big write, bank 0
             write_rec(LINE, n=300, iters=6)],       # bank 1
            [read_rec(8 * LINE, gap=1200)],          # pauses bank 0
        ]
        stats, _ = run(streams)
        assert stats.writes_done == 2
        assert stats.write_pauses >= 1

"""Chaos tests for the service path.

The gateway inherits the engine's failure supervision; these tests
prove the *service* half of the contract with injected faults
(:mod:`repro.testing.faults`, delivered to engine workers through the
``REPRO_FAULTS`` environment):

* a worker hard-crashing mid-coalesced-run fails **every** waiter with
  the **same** structured ``run_failed`` error — nobody hangs, nobody
  gets a different story, and innocent concurrent fingerprints still
  complete;
* a hung run is reaped by the engine watchdog and surfaces the same
  way — the connection never dangles;
* a failure is not sticky: once the fault is gone, re-requesting the
  fingerprint computes cleanly (the engine re-plans failed runs).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.experiments.resilience import RetryPolicy
from repro.service.schemas import SimRequest
from repro.service.testing import GatewayHarness
from repro.testing.faults import ENV_VAR, clear_faults

from .test_service_gateway import raw_request, run_fields

#: How many concurrent waiters share the doomed run.
WAITERS = 5


@pytest.fixture(autouse=True)
def isolated(isolated_run_state):
    yield


def fingerprint_of(fields) -> str:
    return SimRequest.from_wire(fields).to_run_request().fingerprint


def fast_policy(**overrides) -> RetryPolicy:
    defaults = dict(max_attempts=1, deterministic_attempts=1,
                    backoff_base_s=0.01, backoff_cap_s=0.05,
                    max_pool_respawns=6)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def test_worker_crash_fails_all_coalesced_waiters(monkeypatch):
    """Five requests coalesce onto one run whose worker hard-crashes on
    every attempt: all five get the same structured error, the innocent
    concurrent fingerprint completes, and nothing is stranded."""
    doomed = run_fields("mcf_m", "fpb")
    innocent = run_fields("mcf_m", "ideal")
    monkeypatch.setenv(ENV_VAR, json.dumps([{
        "point": "worker_run", "mode": "crash",
        "match": fingerprint_of(doomed),
    }]))
    with GatewayHarness(jobs=2, queue_limit=16, batch_max=8,
                        policy=fast_policy()) as harness:
        host, port = harness.gateway.host, harness.gateway.port

        async def drive():
            return await asyncio.gather(
                *(raw_request(host, port, "POST", "/run", doomed)
                  for _ in range(WAITERS)),
                raw_request(host, port, "POST", "/run", innocent),
            )

        *failed, ok = asyncio.run(drive())
        health = harness.client().healthz()
        metrics = harness.client().metrics()["metrics"]

    # The innocent fingerprint is unharmed.
    status, _, payload = ok
    assert status == 200
    assert payload["scheme"] == "ideal"

    # Every waiter of the doomed run: same status, same structured body.
    bodies = set()
    for status, _, body in failed:
        assert status == 500
        error = body["error"]
        assert error["code"] == "run_failed"
        assert error["retryable"] is False
        assert error["fingerprint"] == fingerprint_of(doomed)
        assert "BrokenProcessPool" in error["message"] \
            or "crash" in error["message"].lower()
        bodies.add(json.dumps(body, sort_keys=True))
    assert len(bodies) == 1, "waiters got different error stories"

    # Nothing stranded: the coalescing map drained, one engine failure.
    assert health["coalescing"]["inflight"] == 0
    assert health["coalescing"]["followers"] >= WAITERS - 1
    assert metrics["counters"]["service_runs_failed"] == 1
    assert metrics["counters"]["service_runs_computed"] == 1


def test_hung_run_is_reaped_not_dangled(monkeypatch):
    """A run that hangs its worker forever: the engine watchdog reaps
    it within the policy budget and the gateway answers with the
    structured failure instead of holding the connection open."""
    doomed = run_fields("tig_m", "fpb")
    monkeypatch.setenv(ENV_VAR, json.dumps([{
        "point": "worker_run", "mode": "hang",
        "match": fingerprint_of(doomed), "hang_s": 600.0,
    }]))
    with GatewayHarness(jobs=1, queue_limit=8, batch_max=4,
                        policy=fast_policy(run_timeout_s=3.0)
                        ) as harness:
        host, port = harness.gateway.host, harness.gateway.port

        async def drive():
            return await asyncio.gather(
                raw_request(host, port, "POST", "/run", doomed),
                raw_request(host, port, "POST", "/run", doomed),
            )

        responses = asyncio.run(drive())
        health = harness.client().healthz()

    for status, _, body in responses:
        assert status == 500
        assert body["error"]["code"] == "run_failed"
    assert health["coalescing"]["inflight"] == 0


def test_failure_is_not_sticky_after_fault_clears(monkeypatch):
    """The crash was environmental, not semantic: once the fault plan
    is gone, the same fingerprint computes cleanly on the next request
    (the engine gives failed runs a fresh chance per plan)."""
    doomed = run_fields("lbm_m", "fpb")
    monkeypatch.setenv(ENV_VAR, json.dumps([{
        "point": "worker_run", "mode": "crash",
        "match": fingerprint_of(doomed),
    }]))
    with GatewayHarness(jobs=1, queue_limit=8, batch_max=4,
                        policy=fast_policy()) as harness:
        client = harness.client(timeout_s=120)
        host, port = harness.gateway.host, harness.gateway.port

        async def one():
            return await raw_request(host, port, "POST", "/run", doomed)

        status, _, body = asyncio.run(one())
        assert status == 500
        assert body["error"]["code"] == "run_failed"

        # Fault gone -> new worker pools are clean -> the retry heals.
        monkeypatch.delenv(ENV_VAR)
        clear_faults()
        payload = client.run(**doomed)
        assert payload["source"] == "computed"
        assert payload["fingerprint"] == fingerprint_of(doomed)

"""Chaos tests for the supervised replica fleet.

These drive the ISSUE-8 acceptance criteria end to end, against a real
gateway on real sockets with real replica processes:

* **Failover**: a replica hard-crashing mid-coalesced-batch loses zero
  requests — its jobs re-route to the next live replica on the ring,
  every waiter gets a 200 byte-identical to the serial result, the
  breaker opens, and the supervisor respawns the slot within its
  restart budget.
* **Degraded serving**: with every replica dead and the budget
  exhausted, requests are served in-process (``source: "degraded"``)
  and ``/healthz`` reports ``"degraded"`` with per-replica breaker
  state instead of 500ing.
* **Poison containment**: a job that kills every replica it touches is
  contained as ``replica_failed`` after ``max_reroutes`` — it does not
  take down the fleet, and innocent fingerprints keep computing.
* **Health checks**: a replica whose heartbeats stop (wedged, not
  dead) is declared down by the heartbeat supervisor; a replica that
  hangs *inside* a job is caught by the parent-side job deadline.

Faults reach replica processes through ``REPRO_FAULTS`` (fork start
method: children inherit the parent's environment); ``stamp`` files
make a crash fire exactly once across the whole fleet.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.experiments.resilience import RetryPolicy
from repro.service.fleet import DEAD, FleetConfig
from repro.service.schemas import SimRequest
from repro.service.testing import GatewayHarness
from repro.testing.faults import ENV_VAR

from .test_service_gateway import (
    raw_request,
    run_fields,
    serial_wire_payload,
)

#: Concurrent waiters sharing each doomed fingerprint.
WAITERS = 4


@pytest.fixture(autouse=True)
def isolated(isolated_run_state):
    yield


def fingerprint_of(fields) -> str:
    return SimRequest.from_wire(fields).to_run_request().fingerprint


def fast_policy(**overrides) -> RetryPolicy:
    defaults = dict(max_attempts=1, deterministic_attempts=1,
                    backoff_base_s=0.01, backoff_cap_s=0.05,
                    max_pool_respawns=6)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def fast_fleet(**overrides) -> FleetConfig:
    """Replica supervision at test cadence: 0.1 s heartbeats, 0.05 s
    supervisor ticks, 0.2 s breaker cooldown."""
    defaults = dict(replicas=2, heartbeat_interval_s=0.1,
                    heartbeat_miss_limit=3, supervise_tick_s=0.05,
                    breaker_cooldown_s=0.2)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def counters_of(harness):
    return harness.gateway.registry.snapshot()["counters"]


async def _post_runs(host, port, jobs):
    """POST /run for every fields dict concurrently; returns the
    (status, headers, body) triples in order."""
    return await asyncio.gather(*[
        raw_request(host, port, "POST", "/run", body=fields)
        for fields in jobs
    ])


def test_replica_crash_mid_batch_fails_over_byte_identical(
        monkeypatch, tmp_path):
    """One replica is shot while holding a coalesced job: the job
    re-routes to a live replica, all waiters get 200s byte-identical to
    the serial result, the breaker opens, and the slot respawns within
    its budget."""
    doomed = run_fields("lbm_m", "fpb")
    innocent = run_fields("lbm_m", "ideal")
    monkeypatch.setenv(ENV_VAR, json.dumps([{
        "point": "replica_crash", "mode": "crash",
        "match": fingerprint_of(doomed),
        "stamp": str(tmp_path / "crash.stamp"),
    }]))
    with GatewayHarness(jobs=1, queue_limit=64, batch_max=16,
                        policy=fast_policy(),
                        fleet=fast_fleet(replicas=3,
                                         restart_budget=2)) as harness:
        host, port = harness.gateway.host, harness.gateway.port
        responses = harness.submit(_post_runs(
            host, port, [doomed] * WAITERS + [innocent])).result(180)

        assert [status for status, _, _ in responses] == [200] * (
            WAITERS + 1)
        doomed_expected = serial_wire_payload(doomed)
        for status, _, body in responses[:WAITERS]:
            body.pop("source")
            assert body == doomed_expected
        innocent_body = responses[-1][2]
        innocent_body.pop("source")
        assert innocent_body == serial_wire_payload(innocent)

        counters = counters_of(harness)
        assert counters["service_replica_deaths"] >= 1
        assert counters["service_replica_failovers"] >= 1
        assert counters["service_replica_breaker_opens"] >= 1
        assert counters["service_replica_restarts"] >= 1
        assert counters["service_fleet_stranded"] == 0

        # The respawned slot is back on the ring (probing or proven).
        status, _, health = harness.submit(
            raw_request(host, port, "GET", "/healthz")).result(30)
        assert status == 200
        fleet = health["fleet"]
        assert fleet["live"] >= 2
        restarted = [m for m in fleet["members"] if m["restarts"] >= 1]
        assert restarted and all(m["alive"] for m in restarted)


def test_all_replicas_down_serves_degraded(monkeypatch):
    """Every replica crashes and the restart budget is zero: the
    gateway serves in-process, labels the result ``degraded``, and
    ``/healthz`` says so instead of failing."""
    monkeypatch.setenv(ENV_VAR, json.dumps([{
        "point": "replica_crash", "mode": "crash", "match": "",
    }]))
    fields = run_fields("mcf_m", "fpb")
    with GatewayHarness(jobs=1, queue_limit=64, batch_max=16,
                        policy=fast_policy(),
                        fleet=fast_fleet(replicas=2,
                                         restart_budget=0)) as harness:
        host, port = harness.gateway.host, harness.gateway.port
        status, _, body = harness.submit(
            raw_request(host, port, "POST", "/run",
                        body=fields)).result(180)
        assert status == 200
        assert body["source"] == "degraded"
        body.pop("source")
        assert body == serial_wire_payload(fields)

        status, _, health = harness.submit(
            raw_request(host, port, "GET", "/healthz")).result(30)
        assert status == 200
        assert health["status"] == "degraded"
        assert health["fleet"]["status"] == "degraded"
        assert health["fleet"]["live"] == 0
        assert all(m["state"] == DEAD
                   for m in health["fleet"]["members"])

        counters = counters_of(harness)
        assert counters["service_fleet_stranded"] >= 1
        assert counters["service_runs_served_degraded"] >= 1


def test_poison_job_is_contained_after_max_reroutes(monkeypatch):
    """A fingerprint that kills every replica it lands on is cut off
    after ``max_reroutes`` with a structured ``replica_failed`` error —
    while innocent fingerprints keep being served by the survivors."""
    poison = run_fields("tig_m", "fpb")
    innocent = run_fields("tig_m", "dimm+chip")
    # No stamp: the crash fires in every replica the job reaches.
    monkeypatch.setenv(ENV_VAR, json.dumps([{
        "point": "replica_crash", "mode": "crash",
        "match": fingerprint_of(poison),
    }]))
    with GatewayHarness(jobs=1, queue_limit=64, batch_max=16,
                        policy=fast_policy(),
                        fleet=fast_fleet(replicas=2, restart_budget=4,
                                         max_reroutes=1)) as harness:
        host, port = harness.gateway.host, harness.gateway.port
        status, _, body = harness.submit(
            raw_request(host, port, "POST", "/run",
                        body=poison)).result(180)
        assert status == 500
        assert body["error"]["code"] == "replica_failed"
        assert body["error"]["retryable"] is True

        # The fleet survived the poison job and still computes.
        status, _, body = harness.submit(
            raw_request(host, port, "POST", "/run",
                        body=innocent)).result(180)
        assert status == 200
        body.pop("source")
        assert body == serial_wire_payload(innocent)

        status, _, health = harness.submit(
            raw_request(host, port, "GET", "/healthz")).result(30)
        assert health["fleet"]["live"] >= 1
        assert counters_of(harness)["service_replica_failovers"] >= 1


def test_heartbeat_loss_declares_replica_down(monkeypatch):
    """A replica whose heartbeats stop (process alive, supervision
    signal gone) is declared down by the heartbeat watchdog; the other
    replica keeps serving."""
    monkeypatch.setenv(ENV_VAR, json.dumps([{
        "point": "heartbeat_drop", "mode": "error", "match": "r0",
    }]))
    fields = run_fields("mix_1", "fpb")
    with GatewayHarness(jobs=1, queue_limit=64, batch_max=16,
                        policy=fast_policy(),
                        fleet=fast_fleet(replicas=2,
                                         restart_budget=1)) as harness:
        host, port = harness.gateway.host, harness.gateway.port

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if counters_of(harness).get(
                    "service_replica_heartbeat_timeouts", 0) >= 1:
                break
            time.sleep(0.05)
        counters = counters_of(harness)
        assert counters["service_replica_heartbeat_timeouts"] >= 1
        assert counters["service_replica_deaths"] >= 1

        # r1 beats on; the fleet still serves real computations.
        status, _, body = harness.submit(
            raw_request(host, port, "POST", "/run",
                        body=fields)).result(180)
        assert status == 200
        assert body["source"] in ("computed", "disk", "degraded")
        body.pop("source")
        assert body == serial_wire_payload(fields)


def test_hung_job_is_reaped_by_the_parent_deadline(monkeypatch,
                                                   tmp_path):
    """A replica that wedges *inside* a job (heartbeats continue) is
    caught by the parent-side job deadline, the job fails over, and the
    waiter still gets the byte-identical result."""
    fields = run_fields("lbm_m", "dimm+chip")
    monkeypatch.setenv(ENV_VAR, json.dumps([{
        "point": "replica_hang", "mode": "hang", "hang_s": 60.0,
        "match": fingerprint_of(fields),
        "stamp": str(tmp_path / "hang.stamp"),
    }]))
    with GatewayHarness(jobs=1, queue_limit=64, batch_max=16,
                        policy=fast_policy(),
                        fleet=fast_fleet(replicas=2, restart_budget=1,
                                         job_timeout_s=5.0)) as harness:
        host, port = harness.gateway.host, harness.gateway.port
        status, _, body = harness.submit(
            raw_request(host, port, "POST", "/run",
                        body=fields)).result(180)
        assert status == 200
        body.pop("source")
        assert body == serial_wire_payload(fields)

        counters = counters_of(harness)
        assert counters["service_replica_deaths"] >= 1
        assert counters["service_replica_failovers"] >= 1

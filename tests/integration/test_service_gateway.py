"""Integration tests for the simulation gateway.

Covers the tentpole acceptance criteria end to end, against a real
gateway on real sockets:

* **Soak**: ~200 concurrent requests (mixed hot / cold / invalid) over
  10 distinct fingerprints produce exactly 10 engine runs, every valid
  response byte-identical to the serial result for its fingerprint,
  with the coalescing map bounded and empty afterwards.
* **Backpressure**: a full admission queue answers 429 with a
  ``Retry-After`` header and a structured body, deterministically.
* **Drain**: in-flight work finishes, new connections are refused, and
  a daemonized ``serve`` process exits 0 on SIGTERM.

Runs here use a micro run scale (wire-level ``n_pcm_writes`` /
``max_refs_per_core`` overrides) so tier-1 stays fast; set
``REPRO_SOAK=1`` (CI's service job) to re-run the soak at the full
quick scale of the acceptance criterion.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.base import _SIM_CACHE, clear_sim_cache, fetch
from repro.service.client import GatewayClient
from repro.service.schemas import InvalidRequestError, SimRequest, SimResponse
from repro.service.testing import GatewayHarness
from repro.testing.faults import ENV_VAR

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Wire-level micro scale: fast enough for tier-1, real simulations.
MICRO_FIELDS = {"scale": "quick", "n_pcm_writes": 40,
                "max_refs_per_core": 10_000}

#: The 10 distinct fingerprints of the acceptance criterion.
COMBOS = [
    ("lbm_m", "fpb"), ("lbm_m", "dimm+chip"), ("lbm_m", "ideal"),
    ("mcf_m", "fpb"), ("mcf_m", "dimm+chip"), ("mcf_m", "ideal"),
    ("tig_m", "fpb"), ("tig_m", "dimm+chip"),
    ("mix_1", "fpb"), ("mix_1", "dimm+chip"),
]


@pytest.fixture(autouse=True)
def isolated(isolated_run_state):
    yield


def run_fields(workload: str, scheme: str, **scale_fields):
    return {"workload": workload, "scheme": scheme,
            **(scale_fields or MICRO_FIELDS)}


async def raw_request(host, port, method, path, body=None,
                      raw_body=None):
    """One HTTP exchange over a plain socket; returns
    (status, headers, parsed json)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = raw_body if raw_body is not None else (
            json.dumps(body).encode() if body is not None else b"")
        head = (f"{method} {path} HTTP/1.1\r\nHost: gateway\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode() + payload)
        await writer.drain()
        blob = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass
    header_blob, _, body_blob = blob.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, (json.loads(body_blob) if body_blob else {})


def serial_wire_payload(fields):
    """What ``POST /run`` must return for ``fields``, computed serially
    in-process (source dropped — it is the only legitimately varying
    key)."""
    sim_request = SimRequest.from_wire(fields)
    request = sim_request.to_run_request()
    result = fetch(request)
    payload = SimResponse(sim_request, request.fingerprint, "serial",
                          result).to_wire()
    payload.pop("source")
    return payload


def _soak(scale_fields, hot_repeats=30, cold_repeats=16,
          **gateway_kwargs):
    """Drive the mixed soak load; returns (harness stats, responses)."""
    with GatewayHarness(jobs=1, queue_limit=64, batch_max=16,
                        **gateway_kwargs) as harness:
        host, port = harness.gateway.host, harness.gateway.port

        async def drive():
            tasks = []
            # Cold + coalesced: every combo requested many times at once.
            for workload, scheme in COMBOS:
                for _ in range(cold_repeats):
                    tasks.append(raw_request(
                        host, port, "POST", "/run",
                        run_fields(workload, scheme, **scale_fields)))
            # Hot-path repeats of the first combo (arrive late enough
            # that many land after its run resolved -> memory hits).
            for _ in range(hot_repeats):
                tasks.append(raw_request(
                    host, port, "POST", "/run",
                    run_fields(*COMBOS[0], **scale_fields)))
            # Invalid traffic, interleaved with the load.
            invalid = [
                raw_request(host, port, "POST", "/run",
                            {"workload": "nope", "scheme": "fpb"}),
                raw_request(host, port, "POST", "/run",
                            raw_body=b"{not json"),
                raw_request(host, port, "POST", "/run",
                            {"workload": "mcf_m", "scheme": "fpb",
                             "surprise": 1}),
                raw_request(host, port, "GET", "/nope"),
                raw_request(host, port, "PUT", "/run",
                            {"workload": "mcf_m", "scheme": "fpb"}),
            ] * 2
            tasks.extend(invalid)
            assert len(tasks) >= 200
            return await asyncio.gather(*tasks)

        responses = asyncio.run(drive())
        # Everything resolved: the coalescing map must be empty.
        health = harness.client().healthz()
        metrics = harness.client().metrics()["metrics"]
        return health, metrics, responses


def check_soak(scale_fields, **gateway_kwargs):
    health, metrics, responses = _soak(scale_fields, **gateway_kwargs)

    statuses = [status for status, _, _ in responses]
    n_valid = sum(1 for s in statuses if s == 200)
    assert n_valid == len(COMBOS) * 16 + 30
    assert statuses.count(400) == 6    # bad workload/json/unknown field
    assert statuses.count(404) == 2
    assert statuses.count(405) == 2

    counters = metrics["counters"]
    # THE acceptance property: 10 distinct fingerprints, exactly 10
    # engine runs — every other valid response was coalesced or cached.
    assert counters["service_runs_computed"] == len(COMBOS)
    assert counters["service_runs_failed"] == 0
    assert health["coalescing"]["leaders"] == len(COMBOS)
    assert health["queue"]["admitted"] == len(COMBOS)
    # Bounded coalescing map: never more entries than distinct
    # fingerprints, and empty once everything resolved.
    assert health["coalescing"]["peak_inflight"] <= len(COMBOS)
    assert health["coalescing"]["inflight"] == 0
    assert health["queue"]["depth"] == 0

    # Byte-identity: group responses per fingerprint; all equal, and
    # equal to the serially computed wire payload.
    by_fingerprint = {}
    for status, _, payload in responses:
        if status != 200:
            continue
        assert payload["source"] in ("memory", "disk", "computed",
                                     "coalesced")
        stripped = dict(payload)
        stripped.pop("source")
        by_fingerprint.setdefault(payload["fingerprint"], []).append(
            json.dumps(stripped, sort_keys=True))
    assert len(by_fingerprint) == len(COMBOS)
    for fingerprint, blobs in by_fingerprint.items():
        assert len(set(blobs)) == 1, f"{fingerprint}: responses differ"

    # Serial ground truth, recomputed from scratch in this process.
    clear_sim_cache()
    for workload, scheme in COMBOS:
        expected = serial_wire_payload(
            run_fields(workload, scheme, **scale_fields))
        blob = json.dumps(expected, sort_keys=True)
        assert by_fingerprint[expected["fingerprint"]][0] == blob, (
            f"{workload}/{scheme}: gateway response differs from the "
            f"serial result")


def test_soak_200_concurrent_requests_micro():
    check_soak(MICRO_FIELDS)


@pytest.mark.skipif(not os.environ.get("REPRO_SOAK"),
                    reason="full quick-scale soak; set REPRO_SOAK=1 "
                           "(CI service job)")
def test_soak_200_concurrent_requests_quick_scale():
    check_soak({"scale": "quick"})


@pytest.mark.skipif(not os.environ.get("REPRO_FLEET"),
                    reason="replica-fleet soak; set REPRO_FLEET=1 "
                           "(CI fleet job)")
def test_soak_200_concurrent_requests_fleet_two_replicas():
    """The full mixed soak with cold work sharded across two
    supervised replicas: same counts, same byte-identity — the
    fleet changes placement, never results."""
    from repro.service.fleet import FleetConfig
    check_soak(MICRO_FIELDS, fleet=FleetConfig(replicas=2))


def test_backpressure_429_with_retry_after(monkeypatch):
    """Deterministic 429: occupy the single dispatcher slot (the first
    run's worker is held open by an injected hang, so the window cannot
    race), fill the 1-slot queue, and watch the next cold fingerprint
    bounce with a structured body and a Retry-After header."""
    occupant = run_fields("mcf_m", "fpb")
    monkeypatch.setenv(ENV_VAR, json.dumps([{
        "point": "worker_run", "mode": "hang", "hang_s": 6.0,
        "match": SimRequest.from_wire(occupant)
        .to_run_request().fingerprint,
    }]))
    with GatewayHarness(jobs=1, queue_limit=1, batch_max=1) as harness:
        host, port = harness.gateway.host, harness.gateway.port

        async def drive():
            first = asyncio.ensure_future(raw_request(
                host, port, "POST", "/run", occupant))
            # Wait until the dispatcher picked the run up (queue empty,
            # one in-flight fingerprint).
            for _ in range(600):
                _, _, health = await raw_request(host, port, "GET",
                                                 "/healthz")
                if (health["coalescing"]["inflight"] == 1
                        and health["queue"]["depth"] == 0):
                    break
                await asyncio.sleep(0.02)
            else:
                pytest.fail("dispatcher never took the first run")
            second = asyncio.ensure_future(raw_request(
                host, port, "POST", "/run",
                run_fields("mcf_m", "ideal")))
            for _ in range(600):
                _, _, health = await raw_request(host, port, "GET",
                                                 "/healthz")
                if health["queue"]["depth"] == 1:
                    break
                await asyncio.sleep(0.02)
            else:
                pytest.fail("second run never queued")
            # Queue is now full: a third cold fingerprint must bounce.
            status, headers, body = await raw_request(
                host, port, "POST", "/run",
                run_fields("tig_m", "fpb"))
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert body["error"]["code"] == "busy"
            assert body["error"]["retryable"] is True
            assert body["error"]["retry_after_s"] >= 1
            assert body["error"]["queue_limit"] == 1
            # The rejected fingerprint left no coalescer residue and
            # the admitted work still completes correctly.
            results = await asyncio.gather(first, second)
            for status, _, payload in results:
                assert status == 200
            _, _, health = await raw_request(host, port, "GET",
                                             "/healthz")
            assert health["coalescing"]["inflight"] == 0
            # A retry of the bounced fingerprint now succeeds.
            status, _, payload = await raw_request(
                host, port, "POST", "/run", run_fields("tig_m", "fpb"))
            assert status == 200
            return health

        health = asyncio.run(drive())
        assert health["queue"]["rejected"] >= 1


def test_graceful_drain_finishes_inflight_work():
    """stop() during an in-flight run: the run's waiters still get
    their 200, and afterwards the port stops accepting."""
    harness = GatewayHarness(jobs=1, queue_limit=8, batch_max=4)
    harness.start()
    try:
        host, port = harness.gateway.host, harness.gateway.port

        async def fire():
            return await raw_request(
                host, port, "POST", "/run", run_fields("lbm_m", "fpb"))

        inflight = harness.submit(fire())
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            if len(harness.gateway.coalescer) == 1:
                break
            time.sleep(0.02)
        else:
            pytest.fail("request never became in-flight")
    finally:
        harness.stop()  # drain: must wait for the in-flight run

    status, _, payload = inflight.result(timeout=60)
    assert status == 200
    assert payload["workload"] == "lbm_m"
    assert harness.gateway.draining
    with pytest.raises(OSError):
        GatewayClient(host, port, timeout_s=2).healthz()


def test_serve_subprocess_sigterm_exits_cleanly(tmp_path):
    """The daemon entry point: ``python -m repro.experiments serve``
    binds an ephemeral port, answers requests, writes its manifest and
    exits 0 on SIGTERM."""
    manifest = tmp_path / "service.manifest.jsonl"
    env = dict(os.environ)
    env.update(PYTHONPATH="src", PYTHONUNBUFFERED="1")
    env.pop(ENV_VAR, None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", "serve",
         "--port", "0", "--no-cache", "--queue-limit", "4",
         "--metrics-out", str(manifest)],
        cwd=REPO_ROOT, env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    try:
        port = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            match = re.search(r"listening on http://[\d.]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        assert port, "gateway never reported its port"
        client = GatewayClient(port=port, timeout_s=120)
        assert client.healthz()["status"] == "serving"
        payload = client.run(**run_fields("mcf_m", "fpb"))
        assert payload["source"] == "computed"
        with pytest.raises(InvalidRequestError):
            client.run(workload="mcf_m", scheme="not-a-scheme")

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    # The drain wrote the v4 service manifest records.
    records = [json.loads(line)
               for line in manifest.read_text().splitlines()]
    types = {record["type"] for record in records}
    assert "service_request" in types
    assert "service_summary" in types
    assert "service_state" in types
    state = next(r for r in records if r["type"] == "service_state")
    assert state["status"] == "draining"
    requests = [r for r in records if r["type"] == "service_request"]
    assert {r["status"] for r in requests} == {200, 400}


def test_memory_cache_stays_bounded():
    """A long-lived gateway trims the global in-memory result cache to
    its configured bound after every dispatch batch."""
    with GatewayHarness(jobs=1, queue_limit=8, batch_max=1,
                        memory_cache_limit=2) as harness:
        client = harness.client()
        for workload, scheme in COMBOS[:4]:
            payload = client.run(**run_fields(workload, scheme))
            assert payload["source"] in ("computed", "memory")
            assert len(_SIM_CACHE) <= 2

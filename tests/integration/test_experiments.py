"""Experiment harness integration: every experiment runs at a micro
scale on the tiny system and produces well-formed results."""

import pytest

from repro.experiments.base import RunScale
from repro.experiments.registry import available_experiments, get_experiment
from repro.trace.generator import clear_trace_cache

from ..conftest import make_tiny_config, reset_run_state

MICRO = RunScale("micro", 40, 10_000, ("mcf_m", "tig_m"))


@pytest.fixture(scope="module", autouse=True)
def fresh_caches():
    # Module-scoped on purpose: the micro-scale sim results are shared
    # across this module's tests. reset_run_state() covers the whole
    # process-wide surface (faults, failed runs, installations), not
    # just the sim cache; the trace cache is extra, local to this suite.
    reset_run_state()
    clear_trace_cache()
    yield
    reset_run_state()
    clear_trace_cache()


class TestRegistry:
    def test_all_ids_present(self):
        ids = available_experiments()
        expected = {
            "fig2", "fig4", "fig10", "fig11", "fig12", "fig13", "fig14",
            "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
            "fig22", "fig23", "tab1", "tab2", "tab3",
        }
        assert expected <= set(ids)

    def test_unknown_id(self):
        from repro.errors import ExperimentError
        with pytest.raises(ExperimentError):
            get_experiment("fig99")


@pytest.mark.parametrize("exp_id", [
    "fig2", "fig4", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig16", "fig17", "fig18", "fig23", "tab1", "tab2", "tab3",
])
def test_experiment_runs_and_renders(exp_id):
    experiment = get_experiment(exp_id)
    result = experiment(make_tiny_config(), MICRO)
    assert result.exp_id == exp_id
    assert result.rows, exp_id
    assert result.columns
    text = result.to_table()
    assert exp_id in text
    # Every row provides every column's key or renders blank cleanly.
    for row in result.rows:
        assert isinstance(row, dict)


def test_speedup_figures_have_gmean_row():
    result = get_experiment("fig4")(make_tiny_config(), MICRO)
    labels = [row["workload"] for row in result.rows]
    assert "gmean" in labels


def test_fig15_sweep_runs():
    scale = RunScale("micro", 40, 10_000, ("mcf_m",))
    result = get_experiment("fig15")(make_tiny_config(), scale)
    assert len(result.rows) == 7  # efficiencies 0.7 .. 0.1


def test_fig19_line_sizes():
    scale = RunScale("micro", 30, 8_000, ("mcf_m",))
    result = get_experiment("fig19")(make_tiny_config(), scale)
    assert result.columns[1:] == ["64B", "128B", "256B"]


def test_tab3_area_rows():
    result = get_experiment("tab3")(make_tiny_config(), MICRO)
    schemes = [row["scheme"] for row in result.rows]
    assert any("2xLocal" in s for s in schemes)
    two_x = result.row_by("scheme", schemes[1])
    assert two_x["overhead_%"] == 100.0


class TestCLI:
    def test_list(self, capsys):
        from repro.experiments.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out

    def test_run_writes_report(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import cli
        # Patch the scales so the CLI runs at micro size.
        monkeypatch.setitem(cli.SCALES, "quick", MICRO)
        monkeypatch.setattr(
            cli, "baseline_config", lambda seed=1: make_tiny_config(seed)
        )
        assert main_run(cli, tmp_path) == 0
        assert (tmp_path / "tab1.txt").exists()


def main_run(cli, tmp_path):
    return cli.main(["run", "tab1", "--scale", "quick",
                     "--out", str(tmp_path)])


@pytest.mark.parametrize("exp_id", ["fig3", "fig5", "fig6", "fig8"])
def test_worked_example_experiments(exp_id):
    """Figures 3/5/6/8 are mechanism illustrations; their experiments
    drive the real power manager through the paper's scenarios."""
    result = get_experiment(exp_id)(make_tiny_config(), MICRO)
    assert result.rows
    text = result.to_table()
    assert exp_id in text


def test_fig5_apt_trace_matches_paper():
    result = get_experiment("fig5")(make_tiny_config(), MICRO)
    apt = [float(row["APT"]) for row in result.rows]
    assert apt == [80, 30, 15, 35, 36, 38, 49, 57, 70, 74, 80]


def test_cli_csv_output(tmp_path, monkeypatch):
    from repro.experiments import cli
    monkeypatch.setitem(cli.SCALES, "quick", MICRO)
    monkeypatch.setattr(
        cli, "baseline_config", lambda seed=1: make_tiny_config(seed)
    )
    assert cli.main(["run", "tab1", "--scale", "quick",
                     "--out", str(tmp_path), "--csv"]) == 0
    assert (tmp_path / "tab1.csv").exists()
    header = (tmp_path / "tab1.csv").read_text().splitlines()[0]
    assert header == "parameter,value"


def test_fig6_multireset_rows():
    result = get_experiment("fig6")(make_tiny_config(), MICRO)
    plain = result.row_by("scheme", "IPM")
    with_mr = result.row_by("scheme", "IPM+MR(2)")
    assert plain["WR-B issues at t=0"] is False
    assert with_mr["WR-B issues at t=0"] is True
    assert float(with_mr["peak group tokens"]) == 30.0
    assert float(plain["peak group tokens"]) == 60.0


def test_fig8_gcp_rows():
    result = get_experiment("fig8")(make_tiny_config(), MICRO)
    wr_b = result.row_by("write", "WR-B")
    wr_c = result.row_by("write", "WR-C")
    assert wr_b["issues"] is True
    assert "chip1:GCP" in wr_b["segment sources"]
    assert wr_c["issues"] is False


def test_fig3_chip_blocking_rows():
    result = get_experiment("fig3")(make_tiny_config(), MICRO)
    assert result.rows[0]["issues"] is True
    assert result.rows[1]["issues"] is False

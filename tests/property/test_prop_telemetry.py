"""Property: observation must not perturb the simulation.

Attaching a :class:`repro.obs.Telemetry` (probe sampling + hot-path
hooks) and a :class:`repro.sim.debug.Timeline` (method wrapping) to a
run must leave every deterministic statistic bit-identical to the bare
run, for any workload shape and scheme, under a fixed seed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies.registry import get_scheme
from repro.obs import Telemetry
from repro.pcm.dimm import DIMM
from repro.sim.cpu import Core
from repro.sim.debug import Timeline
from repro.sim.events import SimEngine
from repro.sim.memory_system import MemorySystem
from repro.sim.stats import SimStats
from repro.trace.records import PCMAccess, READ, WRITE

from ..conftest import make_tiny_config


@st.composite
def access_streams(draw):
    """Two per-core access streams: writes on core 0, reads on core 1
    (reads against written lines can trigger cancellations/pauses)."""
    writes = []
    for _ in range(draw(st.integers(1, 6))):
        addr = draw(st.integers(0, 7))
        n = draw(st.integers(1, 200))
        idx = np.array(sorted(draw(st.sets(
            st.integers(0, 1023), min_size=n, max_size=n))),
            dtype=np.int64)
        iters = np.array(draw(st.lists(
            st.integers(1, 6), min_size=idx.size, max_size=idx.size)),
            dtype=np.uint8)
        gap = draw(st.integers(1, 400))
        writes.append(PCMAccess(core=0, kind=WRITE, line_addr=addr,
                                gap_instr=gap, gap_hit_cycles=0,
                                changed_idx=idx, iter_counts=iters))
    reads = [
        PCMAccess(core=1, kind=READ,
                  line_addr=draw(st.integers(0, 7)),
                  gap_instr=draw(st.integers(1, 400)),
                  gap_hit_cycles=0)
        for _ in range(draw(st.integers(0, 4)))
    ]
    return [writes, reads]


def run_once(streams, scheme, observe):
    config = make_tiny_config()
    spec = get_scheme(scheme)
    cfg = spec.apply_to_config(config)
    engine = SimEngine()
    stats = SimStats()
    dimm = DIMM(cfg)
    manager = spec.build_manager(cfg, dimm)
    mem = MemorySystem(cfg, dimm, manager, engine, stats)
    telemetry = timeline = None
    if observe:
        telemetry = Telemetry(sample_interval=500)
        telemetry.attach(cfg, scheme, "prop", engine, mem, manager)
        timeline = Timeline().attach(mem)
    for i, stream in enumerate(streams):
        Core(i, stream, engine, mem).start()
    end = engine.run()
    mem.finalize(end)
    if observe:
        telemetry.finish_run(stats, end)
        timeline.detach()
    return end, stats, telemetry, timeline


@settings(max_examples=20, deadline=None)
@given(streams=access_streams(),
       scheme=st.sampled_from(["dimm+chip", "fpb", "ideal", "2xlocal"]))
def test_observation_does_not_perturb_results(streams, scheme):
    bare_end, bare_stats, _, _ = run_once(streams, scheme, observe=False)
    obs_end, obs_stats, telemetry, timeline = run_once(
        streams, scheme, observe=True)

    assert obs_end == bare_end
    assert obs_stats.snapshot() == bare_stats.snapshot()

    # The observers really saw the run they claim not to have changed.
    assert telemetry.registry.get("writes_done").value == \
        obs_stats.writes_done
    assert len(timeline.of_kind("write_round_done")) + \
        len(timeline.of_kind("write_cancelled")) >= 1


@settings(max_examples=10, deadline=None)
@given(streams=access_streams())
def test_observed_run_is_self_consistent(streams):
    """Trace scope counts agree with the stats of the same run."""
    _, stats, telemetry, _ = run_once(streams, "fpb", observe=True)
    assert len(telemetry.trace.events_named("write_round")) == \
        stats.write_rounds_done
    assert telemetry.registry.get("write_cancellations").value == \
        stats.write_cancellations
    bursts = telemetry.trace.events_named("write_burst")
    assert sum(e["dur"] for e in bursts) == stats.burst_cycles

"""Property tests: ECC codec and Flip-N-Write invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcm.ecc import TOTAL_BITS, decode_word, encode_word
from repro.pcm.flipnwrite import FlipNWrite

words = st.integers(0, (1 << 64) - 1)


class TestECCProperties:
    @given(value=words)
    @settings(max_examples=80)
    def test_roundtrip(self, value):
        assert decode_word(encode_word(value)).data == value

    @given(value=words, bit=st.integers(0, TOTAL_BITS - 1))
    @settings(max_examples=80)
    def test_single_flip_corrected(self, value, bit):
        result = decode_word(encode_word(value) ^ (1 << bit))
        assert result.data == value
        assert result.corrected
        assert not result.detected_uncorrectable

    @given(
        value=words,
        bits=st.lists(
            st.integers(0, TOTAL_BITS - 1), min_size=2, max_size=2,
            unique=True,
        ),
    )
    @settings(max_examples=80)
    def test_double_flip_detected(self, value, bits):
        codeword = encode_word(value)
        for bit in bits:
            codeword ^= 1 << bit
        result = decode_word(codeword)
        assert result.detected_uncorrectable
        assert not result.corrected

    @given(a=words, b=words)
    @settings(max_examples=60)
    def test_distinct_data_distinct_codewords(self, a, b):
        if a != b:
            assert encode_word(a) != encode_word(b)


line_pairs = st.tuples(
    st.binary(min_size=64, max_size=64), st.binary(min_size=64, max_size=64)
)


class TestFlipNWriteProperties:
    @given(pair=line_pairs)
    @settings(max_examples=60)
    def test_never_much_worse_than_plain(self, pair):
        old = np.frombuffer(pair[0], dtype=np.uint8)
        new = np.frombuffer(pair[1], dtype=np.uint8)
        enc = FlipNWrite(256, 32)
        result = enc.encode(0, old, new)
        assert result.encoded_changes <= result.plain_changes + enc.n_blocks

    @given(blocks=st.lists(st.sampled_from([0x00, 0xFF]),
                           min_size=64, max_size=64))
    @settings(max_examples=60)
    def test_half_bound_holds_for_slc_like_data(self, blocks):
        """For SLC-like data (only levels 0 and 3, which are each
        other's complements) the classic Flip-N-Write half-bound holds:
        a cell differs from either the target or its inverse, never
        both. For general MLC levels it does NOT — a cell can differ
        from both polarities — which is exactly the paper's 'limited
        benefit for MLC PCM' observation (Section 7)."""
        new = np.array(blocks, dtype=np.uint8)
        old = np.zeros(64, dtype=np.uint8)
        enc = FlipNWrite(256, 32)
        result = enc.encode(0, old, new)
        per_block_cap = 32 // 2
        assert result.changed_idx.size <= enc.n_blocks * per_block_cap

    def test_mlc_can_exceed_half_bound(self):
        """Witness for the MLC limitation: intermediate levels defeat
        inversion, so even the better polarity changes > half a block."""
        # old all level 1 (0b01010101 bytes); new all level 0.
        old = np.full(64, 0b01010101, dtype=np.uint8)
        new = np.zeros(64, dtype=np.uint8)
        enc = FlipNWrite(256, 32)
        result = enc.encode(0, old, new)
        assert result.changed_idx.size > enc.n_cells // 2

    @given(data=st.binary(min_size=64, max_size=64))
    @settings(max_examples=40)
    def test_idempotent_rewrite(self, data):
        arr = np.frombuffer(data, dtype=np.uint8)
        enc = FlipNWrite(256, 32)
        enc.encode(0, np.zeros(64, dtype=np.uint8), arr)
        result = enc.encode(0, arr, arr.copy())
        assert result.encoded_changes == 0

"""Property tests: Start-Gap remapping invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcm.startgap import StartGap


class TestStartGapProperties:
    @given(
        n_lines=st.integers(2, 64),
        interval=st.integers(1, 8),
        writes=st.integers(0, 500),
    )
    @settings(max_examples=60)
    def test_always_bijective(self, n_lines, interval, writes):
        sg = StartGap(n_lines, interval)
        for _ in range(writes):
            sg.record_write()
        assert sg.mapping_is_bijective()

    @given(
        n_lines=st.integers(2, 64),
        writes=st.integers(0, 500),
    )
    @settings(max_examples=60)
    def test_inverse_holds(self, n_lines, writes):
        sg = StartGap(n_lines, 1)
        for _ in range(writes):
            sg.record_write()
        for logical in range(n_lines):
            assert sg.logical_of(sg.physical_of(logical)) == logical

    @given(n_lines=st.integers(2, 32))
    @settings(max_examples=30)
    def test_full_cycle_returns_to_identity_shifted(self, n_lines):
        """After (n+1) gap moves, every line has advanced one slot."""
        sg = StartGap(n_lines, 1)
        before = [sg.physical_of(l) for l in range(n_lines)]
        for _ in range(n_lines + 1):
            sg.record_write()
        after = [sg.physical_of(l) for l in range(n_lines)]
        assert after != before
        assert sg.mapping_is_bijective()

    @given(
        n_lines=st.integers(2, 32),
        writes=st.integers(1, 400),
    )
    @settings(max_examples=40)
    def test_gap_moves_counted(self, n_lines, writes):
        interval = 5
        sg = StartGap(n_lines, interval)
        moved = sum(sg.record_write() for _ in range(writes))
        assert moved == writes // interval
        assert sg.gap_moves == moved

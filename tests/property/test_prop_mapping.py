"""Property tests: cell-to-chip mapping invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcm.mapping import make_mapping

mapping_names = st.sampled_from(["naive", "vim", "bim"])
geometries = st.sampled_from([(256, 8), (512, 8), (1024, 8), (2048, 8),
                              (1024, 4)])


class TestMappingProperties:
    @given(name=mapping_names, geom=geometries)
    @settings(max_examples=40)
    def test_every_cell_mapped_in_range(self, name, geom):
        n_cells, n_chips = geom
        m = make_mapping(name, n_cells, n_chips)
        chips = m.chip_of(np.arange(n_cells))
        assert chips.min() >= 0
        assert chips.max() < n_chips

    @given(name=mapping_names, geom=geometries)
    @settings(max_examples=40)
    def test_balanced_partition(self, name, geom):
        n_cells, n_chips = geom
        m = make_mapping(name, n_cells, n_chips)
        counts = m.counts_by_chip(np.arange(n_cells))
        assert (counts == n_cells // n_chips).all()

    @given(
        name=mapping_names,
        offset=st.integers(0, 2047),
        data=st.data(),
    )
    @settings(max_examples=40)
    def test_rotation_preserves_totals(self, name, offset, data):
        m = make_mapping(name, 1024, 8)
        idx = np.array(sorted(data.draw(
            st.sets(st.integers(0, 1023), min_size=1, max_size=100)
        )))
        counts = m.counts_by_chip(idx, offset=offset % 1024)
        assert counts.sum() == idx.size

    @given(name=mapping_names)
    @settings(max_examples=10)
    def test_full_rotation_is_identity(self, name):
        m = make_mapping(name, 1024, 8)
        idx = np.arange(0, 1024, 7)
        assert (
            m.chip_of(idx, offset=1024 % 1024) == m.chip_of(idx)
        ).all()

"""Property tests: cell packing/diffing invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.pcm.cells import bytes_to_levels, changed_cells, levels_to_bytes

line_bytes = arrays(np.uint8, st.integers(8, 64).map(lambda n: n * 4))
paired_lines = st.integers(8, 64).flatmap(
    lambda n: st.tuples(
        arrays(np.uint8, n * 4), arrays(np.uint8, n * 4)
    )
)


class TestPackingProperties:
    @given(data=line_bytes, bits=st.sampled_from([1, 2]))
    @settings(max_examples=60)
    def test_roundtrip(self, data, bits):
        assert (levels_to_bytes(bytes_to_levels(data, bits), bits) == data).all()

    @given(data=line_bytes)
    @settings(max_examples=60)
    def test_level_range(self, data):
        levels = bytes_to_levels(data, 2)
        assert levels.min(initial=0) >= 0
        assert levels.max(initial=0) <= 3

    @given(data=line_bytes)
    @settings(max_examples=60)
    def test_cell_count(self, data):
        assert bytes_to_levels(data, 2).size == data.size * 4
        assert bytes_to_levels(data, 1).size == data.size * 8


class TestDiffProperties:
    @given(pair=paired_lines)
    @settings(max_examples=60)
    def test_diff_symmetric(self, pair):
        old, new = pair
        fwd = changed_cells(old, new, 2)
        bwd = changed_cells(new, old, 2)
        assert (fwd == bwd).all()

    @given(data=line_bytes)
    @settings(max_examples=60)
    def test_self_diff_empty(self, data):
        assert changed_cells(data, data.copy(), 2).size == 0

    @given(pair=paired_lines)
    @settings(max_examples=60)
    def test_mlc_changes_at_most_slc(self, pair):
        """One MLC cell covers two SLC bits, so MLC cell changes never
        exceed SLC bit flips (Figure 2's ordering)."""
        old, new = pair
        mlc = changed_cells(old, new, 2).size
        slc = changed_cells(old, new, 1).size
        assert mlc <= slc
        assert slc <= 2 * mlc

    @given(pair=paired_lines)
    @settings(max_examples=60)
    def test_indices_sorted_unique(self, pair):
        old, new = pair
        idx = changed_cells(old, new, 2)
        assert (np.diff(idx) > 0).all()

"""Property tests: drift model and line-content models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pcm.cells import changed_cells
from repro.pcm.drift import DriftModel
from repro.rng import make_rng
from repro.trace.synthetic.data import LINE_KINDS, make_line_block, make_line_pair

MODEL = DriftModel()


class TestDriftProperties:
    @given(
        level=st.integers(0, 3),
        t1=st.floats(1e-9, 1e6),
        t2=st.floats(1e-9, 1e6),
    )
    @settings(max_examples=80)
    def test_resistance_monotone_in_time(self, level, t1, t2):
        lo, hi = sorted((t1, t2))
        assert MODEL.resistance_at(level, lo) <= MODEL.resistance_at(level, hi)

    @given(level=st.integers(0, 3), t=st.floats(0.0, 1e3))
    @settings(max_examples=80)
    def test_resistance_at_least_nominal(self, level, t):
        assert MODEL.resistance_at(level, t) >= MODEL.level_resistances[level]

    @given(level=st.integers(0, 3))
    @settings(max_examples=20)
    def test_nominal_sensing_is_identity(self, level):
        assert MODEL.sensed_level(MODEL.level_resistances[level]) == level

    @given(level=st.integers(0, 2), t=st.floats(1e-9, 1e9))
    @settings(max_examples=60)
    def test_margin_in_unit_range_until_misread(self, level, t):
        horizon = MODEL.time_to_misread(level)
        if t < horizon:
            assert 0.0 <= MODEL.margin_consumed(level, t) <= 1.0 + 1e-9


class TestLineModelProperties:
    @given(
        kind=st.sampled_from(LINE_KINDS),
        seed=st.integers(0, 500),
        n=st.integers(1, 16),
    )
    @settings(max_examples=40)
    def test_block_shape_and_dtype(self, kind, seed, n):
        block = make_line_block(kind, make_rng(seed, "p"), n, 256)
        assert block.shape == (n, 256)
        assert block.dtype == np.uint8

    @given(kind=st.sampled_from(LINE_KINDS), seed=st.integers(0, 500))
    @settings(max_examples=40)
    def test_pair_changes_bounded(self, kind, seed):
        old, new = make_line_pair(kind, make_rng(seed, "p"), 8, 256)
        for i in range(8):
            n_changed = changed_cells(old[i], new[i], 2).size
            assert 0 <= n_changed <= 1024

    @given(seed=st.integers(0, 500))
    @settings(max_examples=30)
    def test_pair_deterministic_per_seed(self, seed):
        a = make_line_pair("int", make_rng(seed, "p"), 4, 256)
        b = make_line_pair("int", make_rng(seed, "p"), 4, 256)
        assert (a[0] == b[0]).all() and (a[1] == b[1]).all()

    @given(kind=st.sampled_from(LINE_KINDS), seed=st.integers(0, 500))
    @settings(max_examples=30)
    def test_new_version_differs_from_old(self, kind, seed):
        old, new = make_line_pair(kind, make_rng(seed, "p"), 16, 256)
        total = sum(
            changed_cells(old[i], new[i], 2).size for i in range(16)
        )
        assert total > 0  # writes change something, in aggregate

"""Property tests: power-token conservation under arbitrary schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TokenError
from repro.power.gcp import GlobalChargePump
from repro.power.tokens import TokenPool

BUDGET = 560.0


@st.composite
def alloc_schedules(draw):
    """A sequence of (allocate, amount) ops; releases refer to live
    allocations by index."""
    return draw(st.lists(
        st.tuples(st.booleans(), st.floats(1.0, 200.0)),
        min_size=1, max_size=60,
    ))


class TestTokenPoolProperties:
    @given(ops=alloc_schedules())
    @settings(max_examples=80)
    def test_never_negative_never_over_budget(self, ops):
        pool = TokenPool(BUDGET)
        live = []
        for is_alloc, amount in ops:
            if is_alloc:
                if pool.can_allocate(amount):
                    pool.allocate(amount)
                    live.append(amount)
                else:
                    with pytest.raises(TokenError):
                        pool.allocate(amount)
            elif live:
                pool.release(live.pop())
            assert -1e-6 <= pool.available <= BUDGET + 1e-6
            assert pool.allocated == pytest.approx(sum(live))
        for amount in live:
            pool.release(amount)
        assert pool.available == pytest.approx(BUDGET)

    @given(ops=alloc_schedules())
    @settings(max_examples=40)
    def test_min_available_is_a_lower_bound(self, ops):
        pool = TokenPool(BUDGET)
        live = []
        observed_min = BUDGET
        for is_alloc, amount in ops:
            if is_alloc and pool.can_allocate(amount):
                pool.allocate(amount)
                live.append(amount)
            elif not is_alloc and live:
                pool.release(live.pop())
            observed_min = min(observed_min, pool.available)
        assert pool.min_available == pytest.approx(observed_min)


class TestGCPProperties:
    @given(
        amounts=st.lists(st.floats(0.5, 30.0), min_size=1, max_size=30),
        efficiency=st.floats(0.3, 0.95),
    )
    @settings(max_examples=60)
    def test_output_never_exceeds_pump(self, amounts, efficiency):
        gcp = GlobalChargePump(0.95, efficiency, max_output_tokens=66.0)
        grants = []
        for amount in amounts:
            if gcp.can_supply(amount):
                grants.append(gcp.acquire(amount))
            assert gcp.output_in_use <= gcp.max_output_tokens + 1e-6
        for grant in grants:
            gcp.release(grant)
        assert gcp.output_in_use == pytest.approx(0.0)

    @given(
        out=st.floats(0.1, 60.0),
        efficiency=st.floats(0.3, 0.95),
    )
    @settings(max_examples=60)
    def test_input_power_at_least_output(self, out, efficiency):
        """The pump never creates power: input >= output (Eq. 6)."""
        gcp = GlobalChargePump(0.95, efficiency, max_output_tokens=100.0)
        assert gcp.input_power(out) >= out

    @given(
        out=st.floats(1.0, 50.0),
        shrink_to=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60)
    def test_shrink_monotone(self, out, shrink_to):
        gcp = GlobalChargePump(0.95, 0.7, max_output_tokens=66.0)
        grant = gcp.acquire(out)
        gcp.shrink(grant, out * shrink_to)
        assert gcp.output_in_use == pytest.approx(out * shrink_to)

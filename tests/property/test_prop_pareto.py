"""Property tests: Pareto-frontier invariants for the explore layer.

:func:`repro.explore.pareto.pareto_frontier` decides which design
points an exploration reports, so its contract is checked against a
structurally independent brute-force O(n^2) oracle over random small
point sets:

* every frontier member is non-dominated by every input point
  (mutual non-domination within the frontier follows),
* every non-frontier input is dominated by some frontier member (or is
  an objective-vector duplicate of one),
* the frontier — members and order — is invariant under input
  permutation and duplicate insertion,
* the frontier's objective-vector set equals the oracle's.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore.pareto import (
    DEFAULT_OBJECTIVES,
    MAXIMIZE,
    MINIMIZE,
    Objective,
    dominates,
    pareto_frontier,
)

#: Two- and three-objective mixes of senses.
OBJECTIVE_SETS = [
    DEFAULT_OBJECTIVES,
    (Objective("a", MAXIMIZE), Objective("b", MAXIMIZE)),
    (Objective("a", MINIMIZE), Objective("b", MAXIMIZE),
     Objective("c", MINIMIZE)),
]

#: A small value pool makes objective-vector ties and duplicates likely,
#: which is exactly where naive frontier implementations break.
values = st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0, 2.0])


def points_for(objectives):
    names = [obj.name for obj in objectives]
    point = st.fixed_dictionaries({name: values for name in names})
    return st.lists(point, min_size=0, max_size=24)


def brute_force_frontier_vectors(points, objectives):
    """The oracle: all-pairs dominance, as a set of objective tuples."""
    frontier = set()
    for cand in points:
        if not any(dominates(other, cand, objectives)
                   for other in points):
            frontier.add(tuple(cand[obj.name] for obj in objectives))
    return frontier


def vector(point, objectives):
    return tuple(point[obj.name] for obj in objectives)


@st.composite
def frontier_case(draw):
    objectives = draw(st.sampled_from(OBJECTIVE_SETS))
    points = draw(points_for(objectives))
    return objectives, points


@given(frontier_case())
@settings(max_examples=200, deadline=None)
def test_frontier_members_are_non_dominated(case):
    objectives, points = case
    frontier = pareto_frontier(points, objectives)
    for member in frontier:
        assert not any(dominates(p, member, objectives) for p in points)
    # Mutual non-domination within the frontier is the special case.
    for a in frontier:
        for b in frontier:
            assert not dominates(a, b, objectives)


@given(frontier_case())
@settings(max_examples=200, deadline=None)
def test_dominated_points_have_a_dominating_frontier_member(case):
    objectives, points = case
    frontier = pareto_frontier(points, objectives)
    frontier_vectors = {vector(m, objectives) for m in frontier}
    for point in points:
        if vector(point, objectives) in frontier_vectors:
            continue  # an objective-vector duplicate of a member
        assert any(dominates(member, point, objectives)
                   for member in frontier), (
            f"{point} excluded from the frontier but dominated by "
            f"no member")


@given(frontier_case(), st.randoms(use_true_random=False))
@settings(max_examples=150, deadline=None)
def test_frontier_invariant_under_permutation_and_duplicates(case, rnd):
    objectives, points = case
    baseline = pareto_frontier(points, objectives)

    shuffled = list(points)
    rnd.shuffle(shuffled)
    assert pareto_frontier(shuffled, objectives) == baseline

    doubled = list(points)
    for point in points:
        doubled.insert(
            min(int(rnd.random() * (len(doubled) + 1)), len(doubled)),
            dict(point))
    assert pareto_frontier(doubled, objectives) == baseline


@given(frontier_case())
@settings(max_examples=200, deadline=None)
def test_frontier_agrees_with_brute_force_oracle(case):
    objectives, points = case
    frontier = pareto_frontier(points, objectives)
    assert ({vector(m, objectives) for m in frontier}
            == brute_force_frontier_vectors(points, objectives))
    # One representative per distinct vector, canonically ordered.
    vectors = [vector(m, objectives) for m in frontier]
    assert len(vectors) == len(set(vectors))
    signed = [tuple(-obj.signed(v) for obj, v in zip(objectives, vec))
              for vec in vectors]
    assert signed == sorted(signed)


def test_tiebreak_picks_deterministic_representative():
    objectives = (Objective("a", MAXIMIZE),)
    points = [{"a": 1.0, "tag": tag} for tag in ("z", "m", "b")]
    frontier = pareto_frontier(points, objectives,
                               tiebreak=lambda p: p["tag"])
    assert [p["tag"] for p in frontier] == ["b"]

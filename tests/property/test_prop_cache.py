"""Property tests: cache invariants under random access streams."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.set_assoc import SetAssocCache
from repro.config.system import CacheLevelConfig


def small_cache(assoc=2, sets=4, line=64):
    return SetAssocCache(
        CacheLevelConfig(assoc * sets * line, assoc, line, 1), "t"
    )


accesses = st.lists(
    st.tuples(st.integers(0, 64), st.booleans()),  # (line number, is_write)
    min_size=1, max_size=300,
)


class TestCacheProperties:
    @given(ops=accesses)
    @settings(max_examples=60)
    def test_capacity_never_exceeded(self, ops):
        cache = small_cache()
        for line, is_write in ops:
            cache.access(line * 64, is_write)
            for ways in cache._sets.values():
                assert len(ways) <= cache.assoc

    @given(ops=accesses)
    @settings(max_examples=60)
    def test_hits_plus_misses_equals_accesses(self, ops):
        cache = small_cache()
        for line, is_write in ops:
            cache.access(line * 64, is_write)
        assert cache.hits + cache.misses == len(ops)

    @given(ops=accesses)
    @settings(max_examples=60)
    def test_immediate_rereference_hits(self, ops):
        cache = small_cache()
        for line, is_write in ops:
            cache.access(line * 64, is_write)
            assert cache.access(line * 64, False).hit

    @given(ops=accesses)
    @settings(max_examples=60)
    def test_dirty_evictions_only_after_writes(self, ops):
        cache = small_cache(assoc=1, sets=2)
        writes_seen = 0
        for line, is_write in ops:
            writes_seen += is_write
            result = cache.access(line * 64, is_write)
            if result.victim_dirty:
                assert writes_seen > 0

    @given(ops=accesses)
    @settings(max_examples=40)
    def test_victim_not_resident(self, ops):
        cache = small_cache()
        for line, is_write in ops:
            result = cache.access(line * 64, is_write)
            if result.victim_addr is not None:
                assert not cache.contains(result.victim_addr)

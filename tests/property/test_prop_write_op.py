"""Property tests: write-operation schedule invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.write_op import WriteOperation
from repro.pcm.mapping import make_mapping

MAPPING = make_mapping("bim", 1024, 8)
C = 480.0 / 90.0


@st.composite
def write_ops(draw, mr=False):
    n = draw(st.integers(1, 300))
    idx = np.array(sorted(draw(st.sets(
        st.integers(0, 1023), min_size=n, max_size=n,
    ))))
    counts = np.array(draw(st.lists(
        st.integers(1, 16), min_size=idx.size, max_size=idx.size,
    )))
    splits = draw(st.integers(2, 4)) if mr else 1
    return WriteOperation(1, 0, 0, idx, counts, MAPPING, mr_splits=splits)


class TestScheduleProperties:
    @given(w=write_ops())
    @settings(max_examples=60)
    def test_chip_allocs_sum_to_dimm_alloc(self, w):
        for i in range(w.total_iterations):
            for ipm in (False, True):
                chip_sum = w.chip_alloc(i, C, ipm).sum()
                assert chip_sum == pytest.approx(w.dimm_alloc(i, C, ipm))

    @given(w=write_ops())
    @settings(max_examples=60)
    def test_cells_finishing_partition(self, w):
        finished = sum(
            w.cells_finishing_at(i) for i in range(w.total_iterations)
        )
        assert finished == w.n_changed

    @given(w=write_ops())
    @settings(max_examples=60)
    def test_ipm_set_allocations_never_grow(self, w):
        allocs = [
            w.dimm_alloc(i, C, True)
            for i in range(w.mr_splits, w.total_iterations)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(allocs, allocs[1:]))

    @given(w=write_ops())
    @settings(max_examples=60)
    def test_ipm_alloc_covers_demand(self, w):
        """Every SET iteration's allocation covers its true active cells
        (the conservatism that makes the one-iteration reporting lag
        safe, Section 3.1)."""
        for i in range(w.mr_splits, w.total_iterations):
            j = i - w.mr_splits + 1
            true_need = w.active[j] / C if j < w.active.size else 0.0
            assert w.dimm_alloc(i, C, True) >= true_need - 1e-9

    @given(w=write_ops(mr=True))
    @settings(max_examples=60)
    def test_multireset_groups_partition(self, w):
        assert w.group_totals.sum() == w.n_changed
        assert w.group_chip_counts.sum(axis=1).sum() == w.n_changed
        assert (w.group_chip_counts.sum(axis=0) == w.group_totals).all()

    @given(w=write_ops(mr=True))
    @settings(max_examples=60)
    def test_multireset_adds_reset_iterations(self, w):
        base_iters = int(w.iteration_counts.max())
        assert w.total_iterations == base_iters + w.mr_splits - 1

    @given(w=write_ops())
    @settings(max_examples=60)
    def test_per_write_alloc_constant(self, w):
        allocs = {
            w.dimm_alloc(i, C, False) for i in range(w.total_iterations)
        }
        assert allocs == {float(w.n_changed)}

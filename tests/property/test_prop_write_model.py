"""Property tests: the P&V iteration sampler."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system import PCMConfig
from repro.pcm.write_model import IterationSampler, active_cells_per_iteration
from repro.rng import make_rng

SAMPLER = IterationSampler(PCMConfig())


class TestSamplerProperties:
    @given(
        seed=st.integers(0, 1000),
        levels=st.lists(st.integers(0, 3), min_size=1, max_size=200),
    )
    @settings(max_examples=60)
    def test_counts_within_bounds(self, seed, levels):
        rng = make_rng(seed, "prop")
        counts = SAMPLER.sample(np.array(levels, dtype=np.uint8), rng)
        assert counts.min() >= 1
        assert counts.max() <= SAMPLER.max_iterations

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30)
    def test_deterministic_levels_fixed(self, seed):
        rng = make_rng(seed, "prop")
        counts = SAMPLER.sample(np.array([0, 3, 0, 3], dtype=np.uint8), rng)
        assert counts.tolist() == [1, 2, 1, 2]

    @given(
        counts=st.lists(st.integers(1, 16), min_size=1, max_size=200),
    )
    @settings(max_examples=60)
    def test_active_profile_invariants(self, counts):
        active = active_cells_per_iteration(counts, 16)
        assert active[0] == len(counts)
        assert (np.diff(active) <= 0).all()
        assert active[-1] >= 1
        assert active.size == max(counts)

    @given(
        counts=st.lists(st.integers(1, 16), min_size=1, max_size=200),
    )
    @settings(max_examples=60)
    def test_active_sum_equals_total_iterations(self, counts):
        """Sum over iterations of active cells = total cell-iterations
        — the energy-accounting identity behind IPM's savings."""
        active = active_cells_per_iteration(counts, 16)
        assert active.sum() == sum(counts)

"""Property tests: the vectorized kernel is the reference kernel.

Hypothesis drives random line sizes, cell-change vectors, chip counts
and seeds through both kernels and asserts element-wise agreement —
sampling draws, iteration schedules, per-chip histograms — plus the
schedule invariants (counts within ``max_iterations``, histograms
summing to the total cell changes) and the array token ledger matching
per-chip ``PCMChip`` accounting bit for bit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system import PCMConfig
from repro.kernel import ReferenceKernel, VectorizedKernel
from repro.kernel.vectorized import (
    active_cells_per_chip_iteration,
    active_cells_per_iteration,
)
from repro.pcm.chip import PCMChip
from repro.pcm.write_model import IterationSampler
from repro.power.tokens import ChipTokenLedger
from repro.rng import make_rng

PCM = PCMConfig()

levels_arrays = st.lists(
    st.integers(min_value=0, max_value=PCM.n_levels - 1),
    min_size=0, max_size=220,
).map(lambda xs: np.asarray(xs, dtype=np.int64))


@given(levels=levels_arrays, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_samplers_agree_elementwise(levels, seed):
    """Same seed, same levels => both kernels draw identical counts and
    leave the RNG in the same state (so downstream draws match too)."""
    counts = {}
    states = {}
    for kernel in ("reference", "vectorized"):
        rng = make_rng(seed, "prop-kernel")
        counts[kernel] = IterationSampler(PCM, kernel=kernel).sample(
            levels, rng
        )
        states[kernel] = repr(rng.bit_generator.state)
    assert np.array_equal(counts["reference"], counts["vectorized"])
    assert states["reference"] == states["vectorized"]


@given(levels=levels_arrays, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_sampled_counts_within_model_bounds(levels, seed):
    sampler = IterationSampler(PCM, kernel="vectorized")
    counts = sampler.sample(levels, make_rng(seed, "prop-bounds"))
    assert counts.shape == levels.shape
    if counts.size:
        assert counts.min() >= 1
        assert counts.max() <= sampler.max_iterations
        # Per-level ceilings, not just the global one.
        for level in np.unique(levels):
            model = PCM.level_models[int(level)]
            assert counts[levels == level].max() <= model.max_iterations


@st.composite
def plan_inputs(draw):
    n_chips = draw(st.integers(min_value=1, max_value=16))
    n_cells = draw(st.integers(min_value=0, max_value=200))
    chips = draw(
        st.lists(st.integers(0, n_chips - 1),
                 min_size=n_cells, max_size=n_cells)
    )
    counts = draw(
        st.lists(st.integers(1, PCM.max_iterations),
                 min_size=n_cells, max_size=n_cells)
    )
    return (
        np.asarray(chips, dtype=np.int64),
        np.asarray(counts, dtype=np.int64),
        n_chips,
    )


@given(plan_inputs())
@settings(max_examples=80, deadline=None)
def test_plans_agree_and_histograms_conserve_cells(inputs):
    chips, counts, n_chips = inputs
    ref_active, ref_chip = ReferenceKernel().plan(chips, counts, n_chips)
    vec_active, vec_chip = VectorizedKernel().plan(chips, counts, n_chips)
    assert np.array_equal(ref_active, vec_active)
    assert np.array_equal(ref_chip, vec_chip)
    # The per-chip histogram is a partition of the DIMM-level one ...
    assert np.array_equal(vec_chip.sum(axis=0), vec_active)
    if counts.size:
        # ... iteration 1 touches every changed cell, split by chip.
        assert vec_active[0] == counts.size
        assert np.array_equal(
            vec_chip[:, 0], np.bincount(chips, minlength=n_chips)
        )
        # active[k] counts cells with >= k+1 iterations: non-increasing.
        assert (np.diff(vec_active) <= 0).all()
        assert vec_active.size == counts.max()


@given(plan_inputs())
@settings(max_examples=60, deadline=None)
def test_module_histogram_helpers_match_plan(inputs):
    chips, counts, n_chips = inputs
    if not counts.size:
        return
    active = active_cells_per_iteration(counts, int(counts.max()))
    chip_active = active_cells_per_chip_iteration(chips, counts, n_chips)
    plan_active, plan_chip = VectorizedKernel().plan(chips, counts, n_chips)
    assert np.array_equal(active, plan_active)
    assert np.array_equal(chip_active, plan_chip)
    assert chip_active.sum() == counts.sum()


@given(
    budgets=st.lists(st.floats(1.0, 200.0, allow_nan=False),
                     min_size=1, max_size=12),
    ops=st.lists(
        st.tuples(st.integers(0, 11), st.floats(0.0, 80.0, allow_nan=False)),
        max_size=40,
    ),
)
@settings(max_examples=60, deadline=None)
def test_chip_ledger_matches_pcm_chips(budgets, ops):
    """Random allocate/release sequences leave the array ledger and the
    per-chip objects with bit-identical balances and feasibility."""
    ledger = ChipTokenLedger(budgets)
    chips = [PCMChip(c, b) for c, b in enumerate(budgets)]
    n = len(budgets)
    amounts = np.zeros(n)
    for chip_id, amount in ops:
        chip_id %= n
        amounts[:] = 0.0
        amounts[chip_id] = amount
        mask = amounts > 0
        if chips[chip_id].can_allocate(amount):
            chips[chip_id].allocate(amount)
            ledger.allocate(amounts, mask)
        else:
            released = min(amount, chips[chip_id].allocated)
            chips[chip_id].release(released)
            amounts[chip_id] = released
            ledger.release(amounts, mask)
        for c, chip in enumerate(chips):
            assert ledger.allocated[c] == chip.allocated
            assert ledger.fits(np.full(n, amount))[c] == chip.can_allocate(
                amount
            )

"""Property tests: cohort partitioning invariants for batched execution.

:func:`repro.experiments.batch.partition_cohorts` feeds the batched
execution tier, so its contract is load-bearing for correctness, not
just throughput: a run placed in the wrong cohort would execute under a
foreign structure, and a run duplicated or dropped would diverge from
serial execution. Under randomly generated plans (mixed workloads,
kernels, seeds, cache geometries, schemes, power budgets) the partition
must

* cover every unique run exactly once (a true partition),
* be deterministic under any permutation of the input plan,
* never mix structurally-incompatible runs into one cohort, and
* keep fingerprints unique within and disjoint across cohorts, so
  scattering cohort outcomes back by fingerprint round-trips.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system import KERNELS
from repro.experiments.base import RunRequest, RunScale
from repro.experiments.batch import cohort_key, partition_cohorts

from ..conftest import make_tiny_config

MICRO = RunScale("micro", 30, 8_000, ("tig_m",))

#: Structure axes — any difference here must split cohorts.
workloads = st.sampled_from(("tig_m", "mcf_m"))
kernels = st.sampled_from(KERNELS)
seeds = st.integers(1, 3)
llc_sizes = st.sampled_from((1 * 1024 * 1024, 2 * 1024 * 1024))

#: Swept scalars — runs differing only here must share a cohort.
schemes = st.sampled_from(("fpb", "dimm+chip"))
tokens = st.sampled_from((400.0, 466.0, 532.0))


def make_request(workload, kernel, seed, llc, scheme, budget):
    config = (make_tiny_config(seed=seed).with_kernel(kernel)
              .with_llc_size(llc).with_dimm_tokens(budget))
    return RunRequest(config, workload, scheme, MICRO)


requests_st = st.lists(
    st.builds(make_request, workloads, kernels, seeds, llc_sizes,
              schemes, tokens),
    min_size=1, max_size=24,
)


def structure(request: RunRequest):
    """The fields a cohort must agree on (human-readable echo of the
    hashed cohort key, for failure messages)."""
    cfg = request.config
    return (request.workload, cfg.kernel, cfg.seed,
            cfg.caches.l3.size_bytes, request.scale.n_pcm_writes,
            request.scale.max_refs_per_core)


class TestPartitionProperties:
    @given(requests=requests_st)
    @settings(max_examples=60, deadline=None)
    def test_true_partition(self, requests):
        cohorts = partition_cohorts(requests)
        members = [m for c in cohorts for m in c.members]
        assert sorted(m.fingerprint for m in members) == sorted(
            {r.fingerprint for r in requests})

    @given(requests=requests_st, rnd=st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_deterministic_under_permutation(self, requests, rnd):
        shuffled = list(requests)
        rnd.shuffle(shuffled)
        original = partition_cohorts(requests)
        permuted = partition_cohorts(shuffled)
        assert [c.key for c in original] == [c.key for c in permuted]
        assert ([[m.fingerprint for m in c.members] for c in original]
                == [[m.fingerprint for m in c.members] for c in permuted])

    @given(requests=requests_st)
    @settings(max_examples=60, deadline=None)
    def test_never_mixes_incompatible_structures(self, requests):
        for cohort in partition_cohorts(requests):
            shapes = {structure(m) for m in cohort.members}
            assert len(shapes) == 1, shapes
            assert all(cohort_key(m) == cohort.key
                       for m in cohort.members)

    @given(requests=requests_st)
    @settings(max_examples=60, deadline=None)
    def test_scatter_by_fingerprint_round_trips(self, requests):
        cohorts = partition_cohorts(requests)
        seen = set()
        for cohort in cohorts:
            prints = [m.fingerprint for m in cohort.members]
            assert len(prints) == len(set(prints))  # unambiguous scatter
            assert not seen.intersection(prints)  # disjoint across cohorts
            seen.update(prints)
            # Scattering a fingerprint-keyed outcome map back over the
            # cohort reaches every member exactly once.
            outcomes = {fp: object() for fp in prints}
            assert [outcomes[m.fingerprint] for m in cohort.members] \
                == list(outcomes.values())

    @given(workload=workloads, kernel=kernels, seed=seeds, llc=llc_sizes)
    @settings(max_examples=30, deadline=None)
    def test_sweeps_over_scalars_share_one_cohort(self, workload, kernel,
                                                  seed, llc):
        sweep = [make_request(workload, kernel, seed, llc, scheme, budget)
                 for scheme in ("fpb", "dimm+chip")
                 for budget in (400.0, 466.0, 532.0)]
        assert len(partition_cohorts(sweep)) == 1

    @given(base=st.builds(make_request, workloads, kernels, seeds,
                          llc_sizes, schemes, tokens))
    @settings(max_examples=30, deadline=None)
    def test_structure_changes_split_cohorts(self, base):
        cfg = base.config
        variants = [
            RunRequest(cfg, "mcf_m" if base.workload == "tig_m"
                       else "tig_m", base.scheme, MICRO),
            RunRequest(cfg.with_kernel(
                [k for k in KERNELS if k != cfg.kernel][0]),
                base.workload, base.scheme, MICRO),
            RunRequest(replace(cfg, seed=cfg.seed + 7),
                       base.workload, base.scheme, MICRO),
        ]
        base_key = cohort_key(base)
        for variant in variants:
            assert cohort_key(variant) != base_key

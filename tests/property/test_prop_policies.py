"""Property tests: power managers conserve tokens under random
write/iteration schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies.base import PowerManager
from repro.core.write_op import WriteOperation
from repro.pcm.chip import TOKEN_EPS
from repro.pcm.dimm import DIMM

from ..conftest import make_tiny_config


@st.composite
def write_batches(draw):
    """A batch of writes with random cell sets and iteration counts."""
    batch = []
    for _ in range(draw(st.integers(1, 6))):
        n = draw(st.integers(1, 120))
        idx = np.array(sorted(draw(st.sets(
            st.integers(0, 1023), min_size=n, max_size=n,
        ))))
        counts = np.array(draw(st.lists(
            st.integers(1, 8), min_size=idx.size, max_size=idx.size,
        )))
        batch.append((idx, counts))
    return batch


def build_manager(flags):
    config = make_tiny_config()
    dimm = DIMM(config)
    manager = PowerManager(config, dimm, **flags)
    return config, dimm, manager


MANAGER_FLAGS = st.sampled_from([
    dict(enforce_dimm=True, enforce_chip=False, ipm=False),
    dict(enforce_dimm=True, enforce_chip=True, ipm=False),
    dict(enforce_dimm=True, enforce_chip=True, ipm=True),
    dict(enforce_dimm=True, enforce_chip=True, ipm=True, mr_splits=3),
    dict(enforce_dimm=True, enforce_chip=True, ipm=True, gcp_enabled=True),
    dict(enforce_dimm=True, enforce_chip=True, ipm=True, mr_splits=3,
         gcp_enabled=True, mr_grouping="changed"),
])


class TestManagerConservation:
    @given(batch=write_batches(), flags=MANAGER_FLAGS)
    @settings(max_examples=50, deadline=None)
    def test_random_schedule_conserves_everything(self, batch, flags):
        """Drive writes to completion in round-robin; at every step the
        pools' allocations must equal the sum of live holdings, and at
        the end everything must be free again."""
        config, dimm, manager = build_manager(flags)
        writes = [
            WriteOperation(i, 0, 0, idx, counts, dimm.mapping)
            for i, (idx, counts) in enumerate(batch)
        ]
        live = []
        for write in writes:
            if manager.required_rounds(write) > 1:
                continue  # round splitting is the scheduler's job
            if manager.try_issue(write, 0):
                live.append(write)
        manager.assert_conserved()

        t = 1
        guard = 0
        while live and guard < 10_000:
            guard += 1
            still = []
            for write in live:
                if write.state.value == "stalled":
                    if not manager.try_resume(write, t):
                        still.append(write)
                        continue
                    write.state = type(write.state).ACTIVE
                outcome = manager.on_iteration_end(
                    write, write.current_iteration, t
                )
                t += 1
                if outcome == "advance":
                    write.current_iteration += 1
                    still.append(write)
                elif outcome == "stall":
                    write.current_iteration += 1
                    write.state = type(write.state).STALLED
                    still.append(write)
                manager.assert_conserved()
            # Progress guarantee: at least one write must advance per
            # sweep once every running write has stalled (tokens free).
            live = still
        assert guard < 10_000, "schedule did not converge"
        assert manager.dimm_pool.allocated == pytest.approx(0.0, abs=1e-6)
        for chip in dimm.chips:
            assert chip.allocated == pytest.approx(0.0, abs=1e-6)
            assert chip.lent_to_gcp == pytest.approx(0.0, abs=1e-6)
        if manager.gcp is not None:
            assert manager.gcp.output_in_use == pytest.approx(0.0, abs=1e-6)

    @given(batch=write_batches(), flags=MANAGER_FLAGS)
    @settings(max_examples=30, deadline=None)
    def test_release_all_always_safe(self, batch, flags):
        """Abandoning writes at arbitrary points never corrupts pools."""
        config, dimm, manager = build_manager(flags)
        for i, (idx, counts) in enumerate(batch):
            write = WriteOperation(i, 0, 0, idx, counts, dimm.mapping)
            if manager.required_rounds(write) > 1:
                continue
            if manager.try_issue(write, 0):
                if i % 2:
                    manager.on_iteration_end(write, 0, 1)
                manager.release_all(write, 2)
        manager.assert_conserved()
        assert manager.dimm_pool.allocated == pytest.approx(0.0, abs=1e-6)

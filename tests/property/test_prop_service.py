"""Property tests for the service gateway's concurrency core.

The claims under test (see ``repro/service/coalescer.py``): for *any*
interleaving of K concurrent requests over M distinct fingerprints,

* exactly M submissions reach the engine — never a double-run;
* all K requesters get the correct response for *their* fingerprint —
  never cross-wired;
* the coalescing map is empty once everything resolved — memory stays
  bounded by the number of in-flight fingerprints, not by K;
* a failure fans the same error out to every waiter — nobody hangs.

The scenario drives the real :class:`Coalescer` + :class:`AdmissionQueue`
with a stand-in dispatcher (no simulations — interleavings are the
subject here), with Hypothesis choosing the request → fingerprint
mapping and per-request start delays.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.admission import AdmissionQueue
from repro.service.coalescer import Coalescer
from repro.service.schemas import BusyError, RunExecutionError


@st.composite
def workloads(draw):
    m = draw(st.integers(min_value=1, max_value=6))
    k = draw(st.integers(min_value=1, max_value=24))
    requests = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=m - 1),
                  st.integers(min_value=0, max_value=4)),
        min_size=k, max_size=k))
    return requests


async def _run_scenario(requests, *, dispatcher_yields=1):
    """The gateway's resolve path with a stand-in engine: returns
    (coalescer, queue, submissions, responses)."""
    coalescer = Coalescer()
    queue = AdmissionQueue(limit=1_000)
    submissions = []
    cache = {}

    async def dispatcher():
        while True:
            key = await queue.take()
            if key is None:
                return
            for _ in range(dispatcher_yields):  # interleave with clients
                await asyncio.sleep(0)
            submissions.append(key)
            # Engine contract: the cache holds the result before the
            # coalescer entry resolves (no await between the two).
            cache[key] = f"value-for-{key}"
            coalescer.resolve(key, cache[key])

    async def client(fingerprint, delay):
        for _ in range(delay):
            await asyncio.sleep(0)
        hit = cache.get(fingerprint)
        if hit is not None:
            return hit
        lease = coalescer.lease(fingerprint)
        if lease.leader:
            queue.offer(fingerprint)
        return await lease.wait()

    task = asyncio.get_running_loop().create_task(dispatcher())
    responses = await asyncio.gather(
        *(client(f"fp-{index}", delay) for index, delay in requests))
    queue.close()
    await task
    return coalescer, queue, submissions, responses


@settings(max_examples=120, deadline=None)
@given(requests=workloads())
def test_any_interleaving_runs_each_fingerprint_once(requests):
    coalescer, queue, submissions, responses = asyncio.run(
        _run_scenario(requests))
    distinct = {f"fp-{index}" for index, _delay in requests}
    # Exactly M engine submissions, each fingerprint exactly once.
    assert sorted(submissions) == sorted(distinct)
    # Every requester got its own fingerprint's result.
    assert responses == [f"value-for-fp-{index}"
                         for index, _delay in requests]
    # The in-flight map drained completely (bounded memory).
    assert len(coalescer) == 0
    assert coalescer.peak_inflight <= len(distinct)
    assert len(queue) == 0
    # Every submission had a leader; leases never exceed requests.
    assert coalescer.leaders == len(submissions)
    assert coalescer.leaders + coalescer.followers <= len(requests)


@settings(max_examples=60, deadline=None)
@given(requests=workloads(),
       yields=st.integers(min_value=1, max_value=5))
def test_slow_engine_coalesces_harder_never_wrong(requests, yields):
    """A slower dispatcher only increases sharing, never correctness
    risk: same single-submission and correct-response properties."""
    coalescer, _queue, submissions, responses = asyncio.run(
        _run_scenario(requests, dispatcher_yields=yields))
    assert len(submissions) == len(set(submissions))
    assert responses == [f"value-for-fp-{index}"
                         for index, _delay in requests]
    assert len(coalescer) == 0


@settings(max_examples=60, deadline=None)
@given(waiters=st.integers(min_value=1, max_value=12))
def test_failure_fans_out_to_every_waiter(waiters):
    """A failed coalesced run rejects every waiter with the *same*
    structured error — nobody is stranded, nobody gets a different
    story."""

    async def scenario():
        coalescer = Coalescer()
        leases = [coalescer.lease("fp") for _ in range(waiters)]
        assert leases[0].leader and not any(
            lease.leader for lease in leases[1:])
        error = RunExecutionError("boom", fingerprint="fp")
        rejected = coalescer.reject("fp", error)
        outcomes = await asyncio.gather(
            *(lease.wait() for lease in leases), return_exceptions=True)
        return rejected, outcomes, error, len(coalescer)

    rejected, outcomes, error, remaining = asyncio.run(scenario())
    assert rejected == waiters
    assert remaining == 0
    assert all(outcome is error for outcome in outcomes)


def test_full_queue_rejects_all_current_waiters_and_recovers():
    """Leader hits a full admission queue: the lease retracts before
    any follower can join (no-await discipline), the client gets a
    structured 429 with a Retry-After, and the fingerprint is
    re-admittable afterwards."""

    async def scenario():
        coalescer = Coalescer()
        queue = AdmissionQueue(limit=1)
        queue.offer("occupies-the-only-slot")

        lease = coalescer.lease("fp")
        assert lease.leader
        with pytest.raises(BusyError) as excinfo:
            queue.offer("fp")
        coalescer.retract(lease)
        assert excinfo.value.retry_after_s >= 1
        assert excinfo.value.to_wire()["error"]["code"] == "busy"
        assert "fp" not in coalescer

        # Queue drains -> the same fingerprint admits cleanly.
        assert await queue.take() == "occupies-the-only-slot"
        retry = coalescer.lease("fp")
        assert retry.leader
        queue.offer("fp")
        coalescer.resolve("fp", "ok")
        assert await retry.wait() == "ok"

    asyncio.run(scenario())


def test_cancelled_waiter_does_not_cancel_the_run():
    """A dropped connection (cancelled waiter) must not cancel the
    shared future the other waiters are awaiting."""

    async def scenario():
        coalescer = Coalescer()
        leader = coalescer.lease("fp")
        follower = coalescer.lease("fp")
        waiter = asyncio.get_running_loop().create_task(follower.wait())
        await asyncio.sleep(0)
        waiter.cancel()
        await asyncio.sleep(0)
        coalescer.resolve("fp", "survived")
        assert await leader.wait() == "survived"

    asyncio.run(scenario())

"""Shared fixtures for the test suite."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config.system import (
    CacheConfig,
    CacheLevelConfig,
    CPUConfig,
    PCMConfig,
    PowerConfig,
    SystemConfig,
)


def make_tiny_config(seed: int = 1, **overrides) -> SystemConfig:
    """A scaled-down system that keeps simulations fast in tests:
    2 cores, 2 MB per-core L3 — the PCM side stays at Table 1 values."""
    caches = CacheConfig(
        l1=CacheLevelConfig(16 * 1024, 4, 64, 2),
        l2=CacheLevelConfig(256 * 1024, 4, 64, 7),
        l3=CacheLevelConfig(2 * 1024 * 1024, 8, 256, 200),
    )
    config = SystemConfig(
        cpu=CPUConfig(cores=2),
        caches=caches,
        seed=seed,
    )
    if overrides:
        config = replace(config, **overrides)
    return config


@pytest.fixture
def tiny_config() -> SystemConfig:
    return make_tiny_config()


def make_figure5_config() -> SystemConfig:
    """The idealized setting of the Figure 5/6 worked examples:
    SET power is half of RESET power (C = 2), an 80-token budget, and
    perfect pump efficiencies so tokens equal input power."""
    pcm = PCMConfig(reset_power_uw=100.0, set_power_uw=50.0)
    power = PowerConfig(dimm_tokens=80.0, lcp_efficiency=1.0)
    return replace(make_tiny_config(), pcm=pcm, power=power)


@pytest.fixture
def figure5_config() -> SystemConfig:
    return make_figure5_config()

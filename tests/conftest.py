"""Shared fixtures for the test suite.

Beyond the tiny configs, this hosts the process-state isolation
machinery every integration suite (and ``benchmarks/conftest.py``)
used to hand-roll: the experiment layer keeps process-wide state —
in-memory run cache, disk-cache/telemetry/checkpoint installations,
failed-run registry, fault plan — and a test that leaks any of it
poisons its neighbours. Suites request :func:`isolated_run_state`
(usually via a module-local ``autouse`` wrapper) and, when they need a
real on-disk cache, :func:`tmp_sim_cache`.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config.system import (
    CacheConfig,
    CacheLevelConfig,
    CPUConfig,
    PCMConfig,
    PowerConfig,
    SystemConfig,
)
from repro.experiments.base import (
    clear_failed_runs,
    clear_sim_cache,
    use_checkpoints,
    use_disk_cache,
    use_telemetry,
)
from repro.sim.simcache import SimCache
from repro.testing.faults import ENV_VAR as FAULTS_ENV_VAR
from repro.testing.faults import clear_faults


def reset_run_state() -> None:
    """Return every piece of process-wide experiment-layer state to its
    pristine default: no fault plan, empty in-memory run cache, no
    failed-run verdicts, and no disk cache / telemetry / checkpoint
    installation. Call on both sides of anything that mutates them."""
    clear_faults()
    clear_sim_cache()
    clear_failed_runs()
    use_disk_cache(None)
    use_telemetry(None)
    use_checkpoints(None)


@pytest.fixture
def isolated_run_state(monkeypatch):
    """Pristine process-wide run state before *and* after the test,
    with any inherited ``REPRO_FAULTS`` plan scrubbed from the
    environment (it would otherwise reach forked engine workers)."""
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    reset_run_state()
    yield
    reset_run_state()


@pytest.fixture
def tmp_sim_cache(tmp_path) -> SimCache:
    """A fresh on-disk :class:`SimCache` under this test's tmp dir,
    installed process-wide for the duration of the test."""
    cache = SimCache(tmp_path / "cache")
    use_disk_cache(cache)
    yield cache
    use_disk_cache(None)


def make_tiny_config(seed: int = 1, **overrides) -> SystemConfig:
    """A scaled-down system that keeps simulations fast in tests:
    2 cores, 2 MB per-core L3 — the PCM side stays at Table 1 values."""
    caches = CacheConfig(
        l1=CacheLevelConfig(16 * 1024, 4, 64, 2),
        l2=CacheLevelConfig(256 * 1024, 4, 64, 7),
        l3=CacheLevelConfig(2 * 1024 * 1024, 8, 256, 200),
    )
    config = SystemConfig(
        cpu=CPUConfig(cores=2),
        caches=caches,
        seed=seed,
    )
    if overrides:
        config = replace(config, **overrides)
    return config


@pytest.fixture
def tiny_config() -> SystemConfig:
    return make_tiny_config()


def make_figure5_config() -> SystemConfig:
    """The idealized setting of the Figure 5/6 worked examples:
    SET power is half of RESET power (C = 2), an 80-token budget, and
    perfect pump efficiencies so tokens equal input power."""
    pcm = PCMConfig(reset_power_uw=100.0, set_power_uw=50.0)
    power = PowerConfig(dimm_tokens=80.0, lcp_efficiency=1.0)
    return replace(make_tiny_config(), pcm=pcm, power=power)


@pytest.fixture
def figure5_config() -> SystemConfig:
    return make_figure5_config()
